"""The catalog: named tables, their indexes, and cached statistics.

The catalog is the unit the database facade and the branched transaction
manager both wrap. It tracks version counters used by the agentic memory
store's staleness machinery (paper Sec. 6.1) and by the scheduler's
process-pool dispatch backend (which ships whole-catalog snapshots to
worker processes and must know when they go stale):

* ``schema_version`` — bumped on CREATE/DROP/ALTER-like changes;
* ``data_epoch`` — bumped by every catalog-mediated write, including
  whole-table swaps (branch checkout via :meth:`replace_table`);
* per-table ``data_version`` — bumped by the table on every DML, even
  when the mutation bypasses the catalog.

:meth:`version` folds all three into one comparable value, so a snapshot
consumer can detect *any* change — schema, catalog-mediated DML, table
swaps, or direct table mutation — with a single equality check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import CatalogError
from repro.storage.indexes import HashIndex, SortedIndex
from repro.storage.schema import TableSchema
from repro.storage.statistics import TableStats, compute_table_stats
from repro.storage.table import Table, TableSnapshot
from repro.storage.types import Value
from repro.util.text import normalize_identifier


@dataclass(frozen=True)
class CatalogSnapshot:
    """A complete, picklable image of a catalog at one version.

    Tables carry their full chunk state (:class:`TableSnapshot`); indexes
    travel as *definitions* only — their contents are derivable, and
    rebuilding them at restore time is cheaper than pickling value->row-id
    maps. ``version`` records the source catalog's :meth:`Catalog.version`
    so consumers (the process-pool dispatch backend) can tell when a
    shipped snapshot no longer matches the live catalog.
    """

    version: tuple
    tables: tuple[TableSnapshot, ...]
    hash_indexes: tuple[tuple[str, str], ...]
    sorted_indexes: tuple[tuple[str, str], ...]

    @property
    def num_rows(self) -> int:
        return sum(table.num_rows for table in self.tables)


class Catalog:
    """A mutable namespace of tables with index and statistics maintenance."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._hash_indexes: dict[tuple[str, str], HashIndex] = {}
        self._sorted_indexes: dict[tuple[str, str], SortedIndex] = {}
        self._stats_cache: dict[str, tuple[int, TableStats]] = {}
        self.schema_version = 0
        #: Bumped by every catalog-mediated write path (DML helpers and
        #: whole-table swaps); one input to :meth:`version`.
        self.data_epoch = 0

    # -- versioning ----------------------------------------------------------

    def version(self) -> tuple:
        """One comparable value covering every observable catalog state.

        Includes per-table ``data_version`` counters so even writes that
        bypass the catalog (direct ``Table.insert``/``update``/``delete``)
        change the version. The process-pool dispatch backend compares
        versions to decide whether its shipped worker snapshots are still
        valid; cost is O(#tables) per check.
        """
        return (
            self.schema_version,
            self.data_epoch,
            tuple(sorted((key, t.data_version) for key, t in self._tables.items())),
        )

    # -- whole-catalog snapshots ----------------------------------------------

    def snapshot(self) -> CatalogSnapshot:
        """Capture every table (chunk-shared) plus index definitions."""
        return CatalogSnapshot(
            version=self.version(),
            tables=tuple(t.snapshot_state() for t in self._tables.values()),
            hash_indexes=tuple(
                (index.table, index.column) for index in self._hash_indexes.values()
            ),
            sorted_indexes=tuple(
                (index.table, index.column) for index in self._sorted_indexes.values()
            ),
        )

    @classmethod
    def from_snapshot(cls, snapshot: CatalogSnapshot) -> "Catalog":
        """Rebuild a catalog (tables + indexes) from a snapshot.

        Index contents are rebuilt by scanning the restored tables; row
        ids are part of the snapshot, so lookups return exactly what the
        source catalog's indexes would.
        """
        catalog = cls()
        for state in snapshot.tables:
            catalog.register_table(Table.restore(state))
        for table_name, column in snapshot.hash_indexes:
            catalog.create_hash_index(table_name, column)
        for table_name, column in snapshot.sorted_indexes:
            catalog.create_sorted_index(table_name, column)
        return catalog

    # -- table lifecycle -----------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = normalize_identifier(schema.name)
        if key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        self.schema_version += 1
        return table

    def register_table(self, table: Table) -> None:
        """Adopt an externally built table (used by the branch manager)."""
        key = normalize_identifier(table.schema.name)
        if key in self._tables:
            raise CatalogError(f"table {table.schema.name!r} already exists")
        self._tables[key] = table
        self.schema_version += 1

    def drop_table(self, name: str) -> None:
        key = normalize_identifier(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[key]
        self._stats_cache.pop(key, None)
        for index_key in [k for k in self._hash_indexes if k[0] == key]:
            del self._hash_indexes[index_key]
        for index_key in [k for k in self._sorted_indexes if k[0] == key]:
            del self._sorted_indexes[index_key]
        self.schema_version += 1

    def replace_table(self, table: Table) -> None:
        """Swap in a new table object under the same name (branch checkout).

        Bumps ``data_epoch``: the swapped-in table may carry any
        ``data_version``, so per-table counters alone cannot signal this
        change to snapshot consumers.
        """
        key = normalize_identifier(table.schema.name)
        self._tables[key] = table
        self._stats_cache.pop(key, None)
        self._rebuild_indexes_for(key)
        self.data_epoch += 1

    # -- lookups ---------------------------------------------------------------

    def has_table(self, name: str) -> bool:
        return normalize_identifier(name) in self._tables

    def table(self, name: str) -> Table:
        key = normalize_identifier(name)
        if key not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        return self._tables[key]

    def table_names(self) -> list[str]:
        return [table.schema.name for table in self._tables.values()]

    def schemas(self) -> list[TableSchema]:
        return [table.schema for table in self._tables.values()]

    # -- DML with index maintenance ---------------------------------------------

    def insert_rows(self, name: str, rows: Iterable[Iterable[Value]]) -> list[int]:
        table = self.table(name)
        row_ids = table.insert_many(rows)
        key = normalize_identifier(name)
        if self._indexed_columns(key):
            for row_id in row_ids:
                self._index_row(key, table, row_id, add=True)
        self._stats_cache.pop(key, None)
        self.data_epoch += 1
        return row_ids

    def update_row(self, name: str, row_id: int, values: Iterable[Value]) -> None:
        table = self.table(name)
        key = normalize_identifier(name)
        if self._indexed_columns(key):
            self._index_row(key, table, row_id, add=False)
        table.update(row_id, values)
        if self._indexed_columns(key):
            self._index_row(key, table, row_id, add=True)
        self._stats_cache.pop(key, None)
        self.data_epoch += 1

    def delete_row(self, name: str, row_id: int) -> None:
        table = self.table(name)
        key = normalize_identifier(name)
        if self._indexed_columns(key):
            self._index_row(key, table, row_id, add=False)
        table.delete(row_id)
        self._stats_cache.pop(key, None)
        self.data_epoch += 1

    # -- indexes -----------------------------------------------------------------

    def create_hash_index(self, table_name: str, column: str) -> HashIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._hash_indexes:
            raise CatalogError(f"hash index on {table_name}.{column} already exists")
        index = HashIndex(table.schema.name, column)
        position = table.schema.position_of(column)
        for row_id, row in table.scan_with_ids():
            index.add(row[position], row_id)
        self._hash_indexes[key] = index
        self.schema_version += 1
        return index

    def create_sorted_index(self, table_name: str, column: str) -> SortedIndex:
        table = self.table(table_name)
        key = (normalize_identifier(table_name), normalize_identifier(column))
        if key in self._sorted_indexes:
            raise CatalogError(f"sorted index on {table_name}.{column} already exists")
        index = SortedIndex(table.schema.name, column)
        position = table.schema.position_of(column)
        for row_id, row in table.scan_with_ids():
            index.add(row[position], row_id)
        self._sorted_indexes[key] = index
        self.schema_version += 1
        return index

    def hash_index(self, table_name: str, column: str) -> HashIndex | None:
        return self._hash_indexes.get(
            (normalize_identifier(table_name), normalize_identifier(column))
        )

    def sorted_index(self, table_name: str, column: str) -> SortedIndex | None:
        return self._sorted_indexes.get(
            (normalize_identifier(table_name), normalize_identifier(column))
        )

    # -- statistics --------------------------------------------------------------

    def stats(self, table_name: str) -> TableStats:
        """Statistics for ``table_name``, recomputed lazily on data change."""
        key = normalize_identifier(table_name)
        table = self.table(table_name)
        cached = self._stats_cache.get(key)
        if cached is not None and cached[0] == table.data_version:
            return cached[1]
        stats = compute_table_stats(table)
        self._stats_cache[key] = (table.data_version, stats)
        return stats

    # -- internals -----------------------------------------------------------------

    def _indexed_columns(self, table_key: str) -> list[str]:
        columns = [c for (t, c) in self._hash_indexes if t == table_key]
        columns += [c for (t, c) in self._sorted_indexes if t == table_key]
        return columns

    def _index_row(self, table_key: str, table: Table, row_id: int, add: bool) -> None:
        row = table.get(row_id)
        for (t, column), index in list(self._hash_indexes.items()):
            if t != table_key:
                continue
            value = row[table.schema.position_of(column)]
            index.add(value, row_id) if add else index.remove(value, row_id)
        for (t, column), index in list(self._sorted_indexes.items()):
            if t != table_key:
                continue
            value = row[table.schema.position_of(column)]
            index.add(value, row_id) if add else index.remove(value, row_id)

    def _rebuild_indexes_for(self, table_key: str) -> None:
        table = self._tables[table_key]
        for (t, column), old in list(self._hash_indexes.items()):
            if t != table_key:
                continue
            index = HashIndex(old.table, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                index.add(row[position], row_id)
            self._hash_indexes[(t, column)] = index
        for (t, column), old_sorted in list(self._sorted_indexes.items()):
            if t != table_key:
                continue
            sorted_index = SortedIndex(old_sorted.table, column)
            position = table.schema.position_of(column)
            for row_id, row in table.scan_with_ids():
                sorted_index.add(row[position], row_id)
            self._sorted_indexes[(t, column)] = sorted_index
