"""Table schemas: ordered, typed, named columns with light metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.storage.types import DataType
from repro.util.text import normalize_identifier


@dataclass(frozen=True)
class Column:
    """One column of a table schema.

    ``description`` carries human-facing semantics (used by the semantic
    search layer and the sleeper agents); ``primary_key`` marks the table's
    row identity for merge/conflict detection in the branched store.
    """

    name: str
    data_type: DataType
    nullable: bool = True
    primary_key: bool = False
    description: str = ""


@dataclass(frozen=True)
class TableSchema:
    """An immutable ordered collection of :class:`Column` definitions."""

    name: str
    columns: tuple[Column, ...]
    description: str = ""
    _index: dict[str, int] = field(init=False, repr=False, compare=False, hash=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            key = normalize_identifier(column.name)
            if key in index:
                raise CatalogError(f"duplicate column {column.name!r} in table {self.name!r}")
            index[key] = position
        object.__setattr__(self, "_index", index)

    # -- lookups -----------------------------------------------------------

    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return normalize_identifier(name) in self._index

    def position_of(self, name: str) -> int:
        key = normalize_identifier(name)
        if key not in self._index:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return self._index[key]

    def column(self, name: str) -> Column:
        return self.columns[self.position_of(name)]

    def primary_key_positions(self) -> list[int]:
        return [i for i, column in enumerate(self.columns) if column.primary_key]

    # -- derivation --------------------------------------------------------

    def with_description(self, description: str) -> "TableSchema":
        return TableSchema(self.name, self.columns, description)

    def renamed(self, new_name: str) -> "TableSchema":
        return TableSchema(new_name, self.columns, self.description)

    def fingerprint_payload(self) -> tuple:
        """Stable payload describing the schema, for staleness detection."""
        return (
            normalize_identifier(self.name),
            tuple(
                (normalize_identifier(c.name), c.data_type.value, c.nullable, c.primary_key)
                for c in self.columns
            ),
        )
