"""Column and table statistics.

Statistics serve three masters in this system:

* the cost model (cardinality estimation for join ordering and cost-based
  steering feedback, paper Sec. 4.2);
* the sleeper agents (most-common values power the why-not diagnosis of
  literal-format mismatches, e.g. ``'CA'`` vs ``'California'``);
* the simulated agents themselves, whose "exploring specific columns"
  activity (Figure 3) issues the stats queries these objects summarise.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.storage.schema import TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType, Value

#: Number of most-common values retained per column.
MCV_SIZE = 10
#: Number of equi-width histogram buckets for numeric columns.
HISTOGRAM_BUCKETS = 10


@dataclass(frozen=True)
class ColumnStats:
    """Summary statistics for one column."""

    column: str
    data_type: DataType
    row_count: int
    null_count: int
    distinct_count: int
    min_value: Value
    max_value: Value
    most_common: tuple[tuple[Value, int], ...]
    histogram: tuple[int, ...] = ()

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    def selectivity_equals(self, literal: Value) -> float:
        """Estimated fraction of rows where column = literal."""
        if self.row_count == 0:
            return 0.0
        if literal is None:
            return 0.0
        for value, count in self.most_common:
            if value == literal:
                return count / self.row_count
        if self.distinct_count == 0:
            return 0.0
        # Uniformity over the non-MCV remainder.
        mcv_rows = sum(count for _, count in self.most_common)
        remainder_rows = max(self.row_count - self.null_count - mcv_rows, 0)
        remainder_distinct = max(self.distinct_count - len(self.most_common), 1)
        return max(remainder_rows / remainder_distinct, 0.5) / self.row_count

    def selectivity_range(self, low: Value, high: Value) -> float:
        """Estimated fraction of rows where low <= column <= high."""
        if self.row_count == 0 or self.min_value is None or self.max_value is None:
            return 0.0
        if not isinstance(self.min_value, (int, float)) or isinstance(self.min_value, bool):
            return 0.3  # non-numeric: fall back to a fixed guess
        lo = self.min_value if low is None else max(float(low), float(self.min_value))
        hi = self.max_value if high is None else min(float(high), float(self.max_value))
        span = float(self.max_value) - float(self.min_value)
        if span <= 0:
            return 1.0 if lo <= hi else 0.0
        return max(min((hi - lo) / span, 1.0), 0.0)


@dataclass(frozen=True)
class TableStats:
    """Statistics for a whole table, keyed by normalised column name."""

    table: str
    row_count: int
    columns: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats | None:
        return self.columns.get(name.lower())


def compute_column_stats(
    schema: TableSchema, table: Table, column_name: str
) -> ColumnStats:
    """Single-pass statistics for one column."""
    position = schema.position_of(column_name)
    data_type = schema.columns[position].data_type
    counter: Counter[Value] = Counter()
    null_count = 0
    min_value: Value = None
    max_value: Value = None
    numeric_values: list[float] = []
    for row in table.scan():
        value = row[position]
        if value is None:
            null_count += 1
            continue
        counter[value] += 1
        if min_value is None or _less_than(value, min_value):
            min_value = value
        if max_value is None or _less_than(max_value, value):
            max_value = value
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            numeric_values.append(float(value))

    histogram: tuple[int, ...] = ()
    if numeric_values and min_value is not None and max_value is not None:
        histogram = _equi_width_histogram(
            numeric_values, float(min_value), float(max_value)
        )

    return ColumnStats(
        column=schema.columns[position].name,
        data_type=data_type,
        row_count=table.num_rows,
        null_count=null_count,
        distinct_count=len(counter),
        min_value=min_value,
        max_value=max_value,
        most_common=tuple(counter.most_common(MCV_SIZE)),
        histogram=histogram,
    )


def compute_table_stats(table: Table) -> TableStats:
    """Statistics for every column of ``table``."""
    columns = {
        column.name.lower(): compute_column_stats(table.schema, table, column.name)
        for column in table.schema.columns
    }
    return TableStats(table=table.schema.name, row_count=table.num_rows, columns=columns)


def _less_than(left: Value, right: Value) -> bool:
    try:
        return left < right  # type: ignore[operator]
    except TypeError:
        return str(left) < str(right)


def _equi_width_histogram(
    values: list[float], low: float, high: float
) -> tuple[int, ...]:
    buckets = [0] * HISTOGRAM_BUCKETS
    span = high - low
    if span <= 0:
        buckets[0] = len(values)
        return tuple(buckets)
    for value in values:
        index = min(int((value - low) / span * HISTOGRAM_BUCKETS), HISTOGRAM_BUCKETS - 1)
        buckets[index] += 1
    return tuple(buckets)
