"""Observability bench — tracing-off overhead and trace completeness.

Two sections, recorded to ``BENCH_obs.json`` (override via
``BENCH_OBS_JSON``) so the cost of the obs layer is tracked across PRs:

1. **Tracing-off overhead** — the scheduler corpus (64-agent swarm,
   one ``submit_many`` admission batch per measurement) served with the
   obs layer live-but-idle (``DISABLED=False``, no probe asks for a
   trace) vs hard short-circuited (``repro.obs.trace.DISABLED=True``,
   the "layer absent" baseline the module exposes exactly for this A/B).
   Measurements alternate sides and take the best of ``REPS`` so OS
   noise cancels instead of accruing to one side. Acceptance: the idle
   layer costs <2% wall-clock — its hot-path footprint is one module
   flag check plus one contextvar read per plumbing point, never per
   row.
2. **Trace completeness** — the same 64 agents streamed through the
   admission gateway with ``REPRO_TRACE=1``. Every served probe must
   come back with a finished trace carrying a gateway span, a scheduler
   span, and at least one engine span (``node:*`` / ``engine:*``) —
   100% completeness, no sampled-out probes, no dropped subtrees.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass, field

from repro.core import AgentFirstDataSystem, Brief, Probe
from repro.obs import trace as obs_trace
from repro.util.tabulate import format_table

AGENTS = 64
REPS = 9
OVERHEAD_CEILING = 0.02
JSON_PATH_ENV = "BENCH_OBS_JSON"
DEFAULT_JSON_PATH = "BENCH_obs.json"

from bench_scheduler import build_db, swarm_probes  # noqa: E402


@dataclass
class ObsBenchResult:
    #: Best-of-REPS wall-clock for one 64-agent admission batch.
    baseline_ms: float = 0.0  # obs layer short-circuited (DISABLED=True)
    instrumented_ms: float = 0.0  # obs layer live, tracing off
    overhead_fraction: float = 0.0
    #: Completeness at REPRO_TRACE=1: served / traced / complete probes.
    probes_served: int = 0
    probes_traced: int = 0
    probes_complete: int = 0
    completeness: float = 0.0
    mean_spans_per_trace: float = 0.0
    span_name_sample: list[str] = field(default_factory=list)

    def render(self) -> str:
        overhead = format_table(
            ["path", "best ms", "overhead"],
            [
                ("obs layer short-circuited", f"{self.baseline_ms:.1f}", ""),
                (
                    "obs layer live, tracing off",
                    f"{self.instrumented_ms:.1f}",
                    f"{self.overhead_fraction:+.2%}"
                    f" (ceiling {OVERHEAD_CEILING:.0%})",
                ),
            ],
            title=f"tracing-off overhead ({AGENTS}-agent admission batch)",
        )
        completeness = format_table(
            ["metric", "value"],
            [
                ("probes served", self.probes_served),
                ("probes traced", self.probes_traced),
                ("probes complete", self.probes_complete),
                ("completeness", f"{self.completeness:.0%}"),
                ("mean spans per trace", f"{self.mean_spans_per_trace:.1f}"),
            ],
            title=f"trace completeness (REPRO_TRACE=1, {AGENTS} streamed agents)",
        )
        return overhead + "\n\n" + completeness

    def to_json(self) -> dict:
        return {
            "bench": "obs",
            "overhead": {
                "agents": AGENTS,
                "reps": REPS,
                "baseline_ms": round(self.baseline_ms, 2),
                "instrumented_ms": round(self.instrumented_ms, 2),
                "overhead_fraction": round(self.overhead_fraction, 4),
                "ceiling": OVERHEAD_CEILING,
            },
            "completeness": {
                "agents": AGENTS,
                "probes_served": self.probes_served,
                "probes_traced": self.probes_traced,
                "probes_complete": self.probes_complete,
                "completeness": round(self.completeness, 4),
                "mean_spans_per_trace": round(self.mean_spans_per_trace, 2),
                "span_name_sample": self.span_name_sample,
            },
        }


def _serve_batch_ms() -> float:
    """One cold 64-agent admission batch, setup excluded from the timer."""
    system = AgentFirstDataSystem(build_db(), workers=1)
    probes = swarm_probes(AGENTS)
    # A collection mid-measurement is the dominant noise source at this
    # timescale; start each sample from the same clean heap instead.
    gc.collect()
    started = time.perf_counter()
    system.submit_many(probes)
    return (time.perf_counter() - started) * 1000.0


def run_overhead_bench(result: ObsBenchResult) -> None:
    """A/B the idle obs layer against its own kill switch.

    Sides alternate within each rep (A, B, A, B, ...) so a load spike
    lands on both; best-of-REPS per side discards the noise entirely.
    """
    saved_env = os.environ.pop(obs_trace.TRACE_ENV_VAR, None)
    saved_slow = os.environ.pop(obs_trace.SLOW_PROBE_ENV_VAR, None)
    saved_disabled = obs_trace.DISABLED
    baseline = instrumented = float("inf")
    try:
        _serve_batch_ms()  # warm-up: imports, parser tables, kernel memos
        for _ in range(REPS):
            obs_trace.DISABLED = True
            baseline = min(baseline, _serve_batch_ms())
            obs_trace.DISABLED = False
            instrumented = min(instrumented, _serve_batch_ms())
    finally:
        obs_trace.DISABLED = saved_disabled
        if saved_env is not None:
            os.environ[obs_trace.TRACE_ENV_VAR] = saved_env
        if saved_slow is not None:
            os.environ[obs_trace.SLOW_PROBE_ENV_VAR] = saved_slow
    result.baseline_ms = baseline
    result.instrumented_ms = instrumented
    result.overhead_fraction = (
        (instrumented - baseline) / baseline if baseline else 0.0
    )


def _is_complete(trace) -> bool:
    names = [span.name for span in trace.spans()]
    return (
        any(n.startswith("gateway:") for n in names)
        and any(n.startswith("scheduler:") for n in names)
        and any(n.startswith(("node:", "engine:")) for n in names)
    )


def run_completeness_bench(result: ObsBenchResult) -> None:
    """Every probe served under REPRO_TRACE=1 must trace end-to-end."""
    saved_env = os.environ.get(obs_trace.TRACE_ENV_VAR)
    os.environ[obs_trace.TRACE_ENV_VAR] = "1"
    try:
        system = AgentFirstDataSystem(build_db(), workers=1)
        probes = swarm_probes(AGENTS)
        tickets = [system.gateway.submit(probe) for probe in probes]
        system.gateway.flush()
        responses = [ticket.result(timeout=120.0) for ticket in tickets]
        system.gateway.close()
    finally:
        if saved_env is None:
            os.environ.pop(obs_trace.TRACE_ENV_VAR, None)
        else:
            os.environ[obs_trace.TRACE_ENV_VAR] = saved_env
    traces = [r.trace for r in responses if r.trace is not None]
    result.probes_served = len(responses)
    result.probes_traced = len(traces)
    result.probes_complete = sum(1 for t in traces if _is_complete(t))
    result.completeness = (
        result.probes_complete / result.probes_served
        if result.probes_served
        else 0.0
    )
    span_counts = [sum(1 for _ in t.spans()) for t in traces]
    result.mean_spans_per_trace = (
        sum(span_counts) / len(span_counts) if span_counts else 0.0
    )
    if traces:
        result.span_name_sample = sorted(
            {span.name.split(":")[0] + ":*" for span in traces[0].spans()}
        )


def run_obs_bench() -> ObsBenchResult:
    result = ObsBenchResult()
    run_overhead_bench(result)
    run_completeness_bench(result)
    return result


def write_json(result: ObsBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(JSON_PATH_ENV, DEFAULT_JSON_PATH, result.to_json())


def test_obs_overhead_and_completeness(benchmark):
    result = benchmark.pedantic(run_obs_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    # The idle obs layer must be within the noise floor of its own kill
    # switch: <2% wall-clock on the 64-agent scheduler corpus.
    assert result.overhead_fraction < OVERHEAD_CEILING, (
        f"tracing-off overhead {result.overhead_fraction:.2%}"
        f" exceeds the {OVERHEAD_CEILING:.0%} ceiling"
    )
    # 100% completeness: every served probe traced, every trace carrying
    # gateway + scheduler + engine spans.
    assert result.probes_served == AGENTS
    assert result.probes_traced == AGENTS
    assert result.probes_complete == AGENTS


if __name__ == "__main__":
    result = run_obs_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
