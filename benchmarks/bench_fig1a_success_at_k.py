"""Figure 1a — Success @ K on the BIRD-like pool.

Paper shape: both models' success rates rise with the number of parallel
attempts K; GPT-4o-mini ends higher (≈55%→70%) than Qwen2.5-Coder
(≈55%→63%); gains flatten at large K because shared grounding gaps cannot
be fixed by parallel retries.
"""

from __future__ import annotations

from repro.harness import run_fig1a

SEED = 0
N_TASKS = 48
K_VALUES = (1, 5, 10, 20, 30, 40, 50)


def _run():
    return run_fig1a(seed=SEED, n_tasks=N_TASKS, k_values=K_VALUES)


def test_fig1a(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    for series in result.series.values():
        assert series[max(K_VALUES)] >= series[1], "success@K must not degrade"
        assert series[max(K_VALUES)] - series[1] > 0.03, "K must help materially"
    # Neither model reaches 100%: systematic gaps bound parallel retries.
    assert all(max(s.values()) < 0.95 for s in result.series.values())
