"""Ablation A3 — satisficing vs exact-everything (paper Sec. 5.2).

Exploration-phase probes run sampled; answers stay within a few percent of
exact while the engine touches a fraction of the rows.
"""

from __future__ import annotations

from repro.harness import run_satisficing_ablation


def _run():
    return run_satisficing_ablation(seed=0, scale=20)


def test_satisficing(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.work_saved > 0.3
    assert result.mean_relative_error < 0.25
