"""Ablation A2 — the agentic memory store / history on repetitive streams
(paper Sec. 6.1): repeated probes from different agents answer from
history instead of re-executing.
"""

from __future__ import annotations

from repro.harness import run_memory_ablation


def _run():
    return run_memory_ablation(seed=0, n_tasks=6, repeats=4)


def test_memory_ablation(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.history_answers > 0
    assert result.work_saved > 0.4
