"""Ablation A6 — anywhere-token semantic search vs metadata-only lookup
(paper Sec. 4.1): finding which table holds a concept when names don't
match requires searching data and metadata together.
"""

from __future__ import annotations

from repro.db import Database
from repro.semantic import SemanticSearch


def _build_db() -> Database:
    db = Database("catalog")
    db.execute("CREATE TABLE tbl_a1 (id INT, item_desc TEXT, val FLOAT)")
    db.execute("CREATE TABLE tbl_b2 (id INT, payload TEXT)")
    db.execute("CREATE TABLE tbl_c3 (id INT, notes TEXT)")
    db.insert_rows(
        "tbl_a1",
        [(i, f"electronic goods import lot {i}", float(i)) for i in range(200)],
    )
    db.insert_rows("tbl_b2", [(i, f"payroll entry {i}") for i in range(200)])
    db.insert_rows("tbl_c3", [(i, f"shipping manifest {i}") for i in range(200)])
    return db


def test_semantic_search_finds_opaque_tables(benchmark):
    db = _build_db()
    search = SemanticSearch(db)
    search.refresh()

    def _query():
        return search.find_tables("impact of tariffs on electronics imports")

    tables = benchmark(_query)
    print(f"\nsemantic search for 'electronics imports' -> {tables}")
    # Metadata-only lookup cannot find this: no table *name* mentions
    # electronics. The anywhere-token operator finds it via cell contents.
    assert tables[0] == "tbl_a1"
