"""Overload bench — degrade-don't-drop QoS under a 16x admission flood.

The robustness claim of the QoS layer: when far more uncoordinated
agents arrive than the admission window budget can serve (here 256
agents against 16-probe windows — a 16x overload), the system must

1. **drop nothing** — every ticket resolves with an answer or a
   structured error, never a hang or a silent discard;
2. **protect the interactive lane** — hi-pri p99 latency under full
   overload stays within 3x of the *unloaded* p99 on the same machinery
   (same window knobs, same gateway path, no competing load);
3. **keep degradation legible** — every degraded response carries a
   "system under load (<cause>)" steering line naming the tripped
   watermark, per the paper's agent-first contract that degraded service
   must be visible to the caller;
4. **stay inert when unloaded** — a small non-overloaded workload served
   QoS-on is byte-identical (statuses, rows, steering) to QoS-off.

Results append to ``BENCH_overload.json`` (override via
``BENCH_OVERLOAD_JSON``) so the robustness trajectory accumulates across
PRs next to the scheduler/gateway/maintenance benches.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field

from bench_scheduler import build_db, swarm_probes
from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.qos import QosConfig
from repro.util.tabulate import format_table

INTERACTIVE_AGENTS = 32
BULK_AGENTS = 224  # 256 total vs 16-probe windows: 16x overload
WINDOW_BUDGET = 16
MAX_WAIT = 0.05
UNLOADED_SAMPLES = 24
JSON_PATH_ENV = "BENCH_OVERLOAD_JSON"
DEFAULT_JSON_PATH = "BENCH_overload.json"

INTERACTIVE_SQL = "SELECT COUNT(*) FROM stores"


def overload_config() -> SystemConfig:
    return SystemConfig(
        enable_qos=True,
        qos=QosConfig(queue_high=2 * WINDOW_BUDGET, shed_sample_rate=0.1),
        gateway_max_batch=WINDOW_BUDGET,
        gateway_max_wait=MAX_WAIT,
    )


def interactive_probe(agent: int) -> Probe:
    return Probe(
        queries=(INTERACTIVE_SQL,),
        brief=Brief(lane="interactive"),
        agent_id=f"urgent-{agent}",
        principal=f"urgent-{agent}",
    )


def bulk_probe(agent: int) -> Probe:
    # A pool of 7 distinct scans so the bulk flood is not one cache line.
    return Probe(
        queries=(
            "SELECT product, SUM(amount) FROM sales"
            f" WHERE amount > {agent % 7}.0 GROUP BY product",
        ),
        brief=Brief(lane="bulk"),
        agent_id=f"bulk-{agent}",
        principal=f"bulk-{agent}",
    )


def p99(latencies_ms: list[float]) -> float:
    ranked = sorted(latencies_ms)
    return ranked[min(len(ranked) - 1, math.ceil(0.99 * len(ranked)) - 1)]


@dataclass
class OverloadBenchResult:
    agents: int = INTERACTIVE_AGENTS + BULK_AGENTS
    overload_factor: float = (INTERACTIVE_AGENTS + BULK_AGENTS) / WINDOW_BUDGET
    unloaded_p99_ms: float = 0.0
    hipri_p99_ms: float = 0.0
    hipri_mean_ms: float = 0.0
    bulk_p99_ms: float = 0.0
    resolved: int = 0
    submit_errors: int = 0
    degraded: int = 0
    degraded_with_cause: int = 0
    hipri_degraded: int = 0
    overload_windows: int = 0
    shed_to_replicas: int = 0
    flood_wall_ms: float = 0.0
    differential_identical: bool = False

    @property
    def hipri_ratio(self) -> float:
        return (
            self.hipri_p99_ms / self.unloaded_p99_ms
            if self.unloaded_p99_ms
            else float("inf")
        )

    def render(self) -> str:
        return format_table(
            ["metric", "value"],
            [
                ("agents vs window budget", f"{self.agents} vs {WINDOW_BUDGET}"),
                ("overload factor", f"{self.overload_factor:.0f}x"),
                ("unloaded p99", f"{self.unloaded_p99_ms:.1f} ms"),
                ("hi-pri p99 under overload", f"{self.hipri_p99_ms:.1f} ms"),
                ("hi-pri p99 / unloaded p99", f"{self.hipri_ratio:.2f}x"),
                ("bulk p99 under overload", f"{self.bulk_p99_ms:.1f} ms"),
                ("tickets resolved", f"{self.resolved}/{self.agents}"),
                ("degraded (with cause named)", f"{self.degraded} ({self.degraded_with_cause})"),
                ("hi-pri responses degraded", self.hipri_degraded),
                ("overload windows", self.overload_windows),
                ("flood wall-clock", f"{self.flood_wall_ms:.0f} ms"),
                ("QoS-on == QoS-off unloaded", self.differential_identical),
            ],
            title="overload control: 16x flood, degrade-don't-drop",
        )

    def to_json(self) -> dict:
        return {
            "bench": "overload",
            "agents": self.agents,
            "window_budget": WINDOW_BUDGET,
            "overload_factor": round(self.overload_factor, 2),
            "unloaded_p99_ms": round(self.unloaded_p99_ms, 2),
            "hipri_p99_ms": round(self.hipri_p99_ms, 2),
            "hipri_mean_ms": round(self.hipri_mean_ms, 2),
            "hipri_ratio": round(self.hipri_ratio, 3),
            "bulk_p99_ms": round(self.bulk_p99_ms, 2),
            "resolved": self.resolved,
            "submit_errors": self.submit_errors,
            "degraded": self.degraded,
            "degraded_with_cause": self.degraded_with_cause,
            "hipri_degraded": self.hipri_degraded,
            "overload_windows": self.overload_windows,
            "shed_to_replicas": self.shed_to_replicas,
            "flood_wall_ms": round(self.flood_wall_ms, 1),
            "differential_identical": self.differential_identical,
        }


def measure_unloaded_p99() -> float:
    """The baseline: one interactive probe at a time through the same
    gateway machinery (window timer included), nobody else in line."""
    system = AgentFirstDataSystem(build_db(), config=overload_config(), workers=1)
    latencies = []
    for agent in range(UNLOADED_SAMPLES):
        started = time.perf_counter()
        ticket = system.gateway.submit(interactive_probe(agent))
        ticket.result(timeout=60.0)
        latencies.append((time.perf_counter() - started) * 1000.0)
    system.gateway.close()
    return p99(latencies)


def run_flood(result: OverloadBenchResult) -> None:
    """256 uncoordinated agent threads hit 16-probe windows at once."""
    system = AgentFirstDataSystem(build_db(), config=overload_config(), workers=1)
    probes = [interactive_probe(i) for i in range(INTERACTIVE_AGENTS)] + [
        bulk_probe(i) for i in range(BULK_AGENTS)
    ]
    latencies = [0.0] * len(probes)
    responses: list = [None] * len(probes)
    errors: list = []
    barrier = threading.Barrier(len(probes) + 1)

    def agent_main(index: int, probe: Probe) -> None:
        try:
            barrier.wait()
            started = time.perf_counter()
            ticket = system.gateway.submit(probe)
            responses[index] = ticket.result(timeout=300.0)
            latencies[index] = (time.perf_counter() - started) * 1000.0
        except Exception as exc:  # zero-drop accounting: a raise counts too
            errors.append(exc)

    threads = [
        threading.Thread(target=agent_main, args=(index, probe))
        for index, probe in enumerate(probes)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    result.flood_wall_ms = (time.perf_counter() - started) * 1000.0
    stats = system.gateway.stats()
    system.gateway.close()

    result.submit_errors = len(errors)
    result.resolved = sum(1 for r in responses if r is not None)
    hipri = latencies[:INTERACTIVE_AGENTS]
    bulk = latencies[INTERACTIVE_AGENTS:]
    result.hipri_p99_ms = p99(hipri)
    result.hipri_mean_ms = sum(hipri) / len(hipri)
    result.bulk_p99_ms = p99(bulk)
    result.overload_windows = stats["overload_windows"]
    result.shed_to_replicas = stats["probes_shed_to_replicas"]
    for index, response in enumerate(responses):
        if response is None:
            continue
        load_hints = [s for s in response.steering if "system under load" in s]
        if load_hints:
            result.degraded += 1
            if index < INTERACTIVE_AGENTS:
                result.hipri_degraded += 1
            if all("(" in hint and ">" in hint for hint in load_hints):
                result.degraded_with_cause += 1


def run_differential(result: OverloadBenchResult) -> None:
    """Unloaded QoS-on must be byte-identical to QoS-off."""

    def serve(config: SystemConfig | None):
        system = AgentFirstDataSystem(build_db(), config=config, workers=1)
        tickets = [system.gateway.submit(p) for p in swarm_probes(8)]
        system.gateway.flush()
        served = [t.result(timeout=60.0) for t in tickets]
        system.gateway.close()
        return [
            (
                [o.status for o in r.outcomes],
                [o.result.rows if o.result is not None else None for o in r.outcomes],
                list(r.steering),
            )
            for r in served
        ]

    plain = serve(None)
    qos_on = serve(
        SystemConfig(enable_qos=True, qos=QosConfig(queue_high=2 * WINDOW_BUDGET))
    )
    result.differential_identical = plain == qos_on


def run_overload_bench() -> OverloadBenchResult:
    result = OverloadBenchResult()
    result.unloaded_p99_ms = measure_unloaded_p99()
    run_flood(result)
    run_differential(result)
    return result


def write_json(result: OverloadBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(JSON_PATH_ENV, DEFAULT_JSON_PATH, result.to_json())


def assert_acceptance(result: OverloadBenchResult) -> None:
    # Zero dropped probes: every one of the 256 tickets resolved.
    assert result.submit_errors == 0
    assert result.resolved == result.agents
    # The flood actually was an overload, and shedding actually fired.
    assert result.overload_factor >= 10.0
    assert result.overload_windows >= 1
    assert result.degraded > 0
    # The interactive lane was protected, not degraded.
    assert result.hipri_degraded == 0
    assert result.hipri_p99_ms <= 3.0 * result.unloaded_p99_ms
    # Every degraded response named the tripped watermark.
    assert result.degraded_with_cause == result.degraded
    # And with nobody overloading it, the layer is invisible.
    assert result.differential_identical


def test_overload_degrade_dont_drop(benchmark):
    result = benchmark.pedantic(run_overload_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
    assert_acceptance(result)


if __name__ == "__main__":
    result = run_overload_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
    assert_acceptance(result)
