"""Ablation A4 — sleeper-agent steering closes grounding gaps faster
(paper Sec. 4.2): why-not feedback tells the agent how values are
actually encoded, saving follow-up probes.
"""

from __future__ import annotations

from repro.harness import run_steering_ablation


def _run():
    return run_steering_ablation(seed=0, n_tasks=10)


def test_steering(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.probes_with_steering < result.probes_without_steering
    assert result.reduction > 0.1
