"""Durability bench — crash-recovery cost and replica read offload.

Two questions the WAL subsystem must answer with numbers, recorded to
``BENCH_durability.json`` (override via ``BENCH_DURABILITY_JSON``) so the
trajectory accumulates across PRs:

1. **Recovery time vs log length.** Recovery replays the committed tail
   after the last checkpoint, so its cost is linear in tail records, and
   a checkpoint collapses it to near-constant. We crash a database after
   N single-row logged writes (no checkpoint) and time
   ``Database.recover``; a final row checkpoints first and recovers from
   an empty tail. Every recovery is verified exact (row count + catalog
   version) before its time is reported.

2. **Replica read offload.** 64 uncoordinated agents stream
   bounded-staleness reads (``Brief(max_staleness=...)``) through the
   gateway (``max_batch`` 16) backed by 2 log-fed replicas: the loaded
   windows spill eligible probes to the replicas, and every replica-served
   response carries its explicit staleness hint.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.util.tabulate import format_table

TAIL_LENGTHS = (100, 1000, 5000)
SWARM_AGENTS = 64
REPLICAS = 2
MAX_BATCH = 16
JSON_PATH_ENV = "BENCH_DURABILITY_JSON"
DEFAULT_JSON_PATH = "BENCH_durability.json"


@dataclass
class DurabilityBenchResult:
    #: (tail_records, checkpointed, recover_ms, exact).
    recovery_rows: list[tuple] = field(default_factory=list)
    #: Replica offload at 64 agents.
    agents: int = 0
    probes_offloaded: int = 0
    offload_fraction: float = 0.0
    hinted_fraction: float = 0.0
    stream_ms: float = 0.0

    def render(self) -> str:
        recovery = format_table(
            ["tail records", "checkpointed", "recover ms", "exact"],
            [
                (tail, "yes" if ckpt else "no", f"{ms:.1f}", "yes" if ok else "NO")
                for tail, ckpt, ms, ok in self.recovery_rows
            ],
            title="crash-recovery time vs committed tail length",
        )
        offload = format_table(
            ["agents", "replicas", "offloaded", "fraction", "hinted", "ms"],
            [
                (
                    self.agents,
                    REPLICAS,
                    self.probes_offloaded,
                    f"{self.offload_fraction:.0%}",
                    f"{self.hinted_fraction:.0%}",
                    f"{self.stream_ms:.1f}",
                )
            ],
            title="replica read offload under a loaded gateway",
        )
        return recovery + "\n\n" + offload

    def to_json(self) -> dict:
        return {
            "bench": "durability",
            "recovery": [
                {
                    "tail_records": tail,
                    "checkpointed": ckpt,
                    "recover_ms": round(ms, 2),
                    "exact": ok,
                }
                for tail, ckpt, ms, ok in self.recovery_rows
            ],
            "offload": {
                "agents": self.agents,
                "replicas": REPLICAS,
                "max_batch": MAX_BATCH,
                "probes_offloaded": self.probes_offloaded,
                "offload_fraction": round(self.offload_fraction, 4),
                "hinted_fraction": round(self.hinted_fraction, 4),
                "stream_ms": round(self.stream_ms, 2),
            },
        }


def time_recovery(tail_records: int, checkpointed: bool) -> tuple[float, bool]:
    """Crash a database after ``tail_records`` logged writes; time recovery."""
    wal_dir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        # A huge checkpoint interval keeps the whole workload in the tail.
        db = Database("bench", wal_dir=False)
        db.attach_wal(wal_dir, checkpoint_every=10**9)
        db.execute("CREATE TABLE events (id INT PRIMARY KEY, payload TEXT)")
        for i in range(tail_records):
            db.catalog.insert_rows("events", [(i, f"event-{i}")])
        if checkpointed:
            db.checkpoint()
        expected_version = db.catalog.version()
        wal = db.wal
        db.catalog.wal = None
        wal.close()  # crash: no flush beyond the acknowledged appends

        started = time.perf_counter()
        recovered = Database.recover(wal_dir)
        recover_ms = (time.perf_counter() - started) * 1000.0
        exact = (
            recovered.catalog.version() == expected_version
            and recovered.execute("SELECT COUNT(*) FROM events").first_value()
            == tail_records
        )
        crash_wal = recovered.wal
        recovered.catalog.wal = None
        crash_wal.close()
        return recover_ms, exact
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def build_db(rows: int = 900) -> Database:
    db = Database("bench")
    db.execute("CREATE TABLE sales (id INT, store_id INT, amount FLOAT)")
    db.insert_rows(
        "sales", [(i, 1 + i % 4, float(i % 23)) for i in range(rows)]
    )
    return db


def run_offload_swarm() -> tuple[int, float, float, float]:
    """64 uncoordinated bounded-staleness readers against 2 replicas."""
    wal_dir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        db = build_db()
        db.attach_wal(wal_dir)
        system = AgentFirstDataSystem(
            db,
            config=SystemConfig(
                read_replicas=REPLICAS,
                gateway_max_batch=MAX_BATCH,
                gateway_max_wait=0.05,
            ),
            workers=1,
        )
        responses: list = [None] * SWARM_AGENTS
        barrier = threading.Barrier(SWARM_AGENTS + 1)

        def agent_main(index: int) -> None:
            probe = Probe(
                queries=(
                    f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + index % 4}",
                ),
                brief=Brief(max_staleness=16),
                agent_id=f"agent-{index}",
            )
            ticket = system.gateway.submit(probe)
            barrier.wait()
            responses[index] = ticket.result(timeout=120.0)

        threads = [
            threading.Thread(target=agent_main, args=(index,))
            for index in range(SWARM_AGENTS)
        ]
        for thread in threads:
            thread.start()
        barrier.wait()
        started = time.perf_counter()
        system.gateway.flush()
        for thread in threads:
            thread.join()
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        offloaded = system.gateway.stats()["probes_offloaded"]
        hinted = sum(
            1
            for response in responses
            if any("read replica" in hint for hint in response.steering)
        )
        system.close()
        return offloaded, offloaded / SWARM_AGENTS, hinted / SWARM_AGENTS, elapsed_ms
    finally:
        shutil.rmtree(wal_dir, ignore_errors=True)


def run_durability_bench() -> DurabilityBenchResult:
    result = DurabilityBenchResult(agents=SWARM_AGENTS)
    for tail in TAIL_LENGTHS:
        recover_ms, exact = time_recovery(tail, checkpointed=False)
        result.recovery_rows.append((tail, False, recover_ms, exact))
    # The checkpointed run: same write count as the longest tail, but the
    # checkpoint collapses replay to (near) nothing.
    recover_ms, exact = time_recovery(TAIL_LENGTHS[-1], checkpointed=True)
    result.recovery_rows.append((TAIL_LENGTHS[-1], True, recover_ms, exact))

    offloaded, fraction, hinted, stream_ms = run_offload_swarm()
    result.probes_offloaded = offloaded
    result.offload_fraction = fraction
    result.hinted_fraction = hinted
    result.stream_ms = stream_ms
    return result


def write_json(result: DurabilityBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(JSON_PATH_ENV, DEFAULT_JSON_PATH, result.to_json())


def test_durability(benchmark):
    result = benchmark.pedantic(run_durability_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    # Every recovery must be exact — speed means nothing otherwise.
    assert all(ok for _, _, _, ok in result.recovery_rows)
    # A checkpoint must beat replaying the full longest tail.
    longest = max(ms for _, ckpt, ms, _ in result.recovery_rows if not ckpt)
    checkpointed = [ms for _, ckpt, ms, _ in result.recovery_rows if ckpt][0]
    assert checkpointed < longest
    # The loaded gateway actually spilled reads, and every offloaded
    # response was explicitly hinted.
    assert result.probes_offloaded > 0
    assert result.hinted_fraction == result.offload_fraction


if __name__ == "__main__":
    result = run_durability_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
