"""Figure 3 — labeled agent activities vs. normalized trace position.

Paper shape: exploring tables and columns concentrates early in traces,
attempting-part and attempting-entire later, with overlapping phases.
"""

from __future__ import annotations

from repro.harness import run_fig3

SEED = 0


def _center_of_mass(bins):
    total = sum(bins)
    if not total:
        return 0.0
    return sum(i * v for i, v in enumerate(bins)) / total


def _run():
    return run_fig3(seed=SEED, n_tasks=22, repetitions=2)


def test_fig3(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    com = {name: _center_of_mass(bins) for name, bins in result.heatmap.items()}
    assert com["exploring tables"] < com["attempting part of the query"]
    assert com["exploring tables"] < com["attempting entire query"]
    assert com["exploring specific columns"] < com["attempting entire query"]
    # Phases overlap: exploration still occurs in the second half.
    tables_bins = result.heatmap["exploring tables"]
    assert sum(tables_bins[5:]) > 0
