"""Benchmark-wide configuration.

Every bench prints the reproduced table/figure (the same rows/series the
paper reports) in addition to timing via pytest-benchmark. Sizes are kept
moderate so the full suite completes in minutes; the harness functions
accept larger sizes for higher-fidelity runs.
"""
