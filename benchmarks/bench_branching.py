"""Sec. 6.2 — agents branch/rollback far more than humans; CoW makes it cheap.

Paper: at Neon, agents created ~20x more branches and performed ~50x more
rollbacks than humans. Second section: fork cost must be O(#tables), not
O(rows) (A5).
"""

from __future__ import annotations

import time

from repro.harness import run_branching_experiment
from repro.workloads.updates import fresh_accounts_manager


def _run():
    return run_branching_experiment(seed=0, sessions=8)


def test_branch_rollback_ratios(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.branch_ratio > 10, "agents must branch an order of magnitude more"
    assert result.rollback_ratio > 20
    assert result.cow_shared_fraction > 0.7


def test_fork_cost_independent_of_rows(benchmark):
    def fork_thousand():
        manager = fresh_accounts_manager(n_accounts=4096)
        start = time.perf_counter()
        for i in range(1000):
            manager.fork("main", f"b{i}")
        fork_time = time.perf_counter() - start
        return manager, fork_time

    manager, fork_time = benchmark.pedantic(fork_thousand, rounds=1, iterations=1)
    print(f"\n1000 forks of a 4096-row database: {fork_time:.3f}s"
          f" ({fork_time:.6f}s per fork)")
    assert manager.live_branch_count() == 1001
    assert fork_time < 5.0
