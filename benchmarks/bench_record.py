"""Cross-PR perf-trajectory recording for the benchmark suite.

Benches used to overwrite their JSON on every run, so the artifact CI
uploads only ever held the latest numbers and the cross-PR trajectory
was empty. This helper appends instead: each run becomes one record
keyed by git SHA + date inside ``{"bench": ..., "runs": [...]}``. A
legacy single-run file (the pre-append format: the payload dict at top
level) is adopted as the first run so no history is thrown away.

Re-running a bench on the *same commit* replaces that commit's record
instead of appending a duplicate — a retried CI job or a local re-run
must not double-count a SHA in the trajectory. (Runs whose SHA could not
be resolved — ``"unknown"`` — are never deduplicated, as they cannot be
told apart.)
"""

from __future__ import annotations

import json
import os
import subprocess
from datetime import datetime, timezone


def git_sha() -> str:
    """The current commit's short SHA; CI env fallback; "unknown" offline."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
        if out.returncode == 0 and out.stdout.strip():
            return out.stdout.strip()
    except Exception:
        pass
    env_sha = os.environ.get("GITHUB_SHA", "")
    return env_sha[:12] if env_sha else "unknown"


def _load_runs(path: str, bench: str) -> list[dict]:
    if not os.path.exists(path):
        return []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        return []  # unreadable artifact: start a fresh trajectory
    if isinstance(existing, dict) and isinstance(existing.get("runs"), list):
        return [run for run in existing["runs"] if isinstance(run, dict)]
    if isinstance(existing, dict) and existing.get("bench") == bench:
        # Legacy overwrite-format file: adopt it as the first run.
        adopted = dict(existing)
        adopted.setdefault("git_sha", "unknown")
        adopted.setdefault("date", None)
        return [adopted]
    return []


def append_run(
    path_env: str, default_path: str, payload: dict, metrics: dict | None = None
) -> str:
    """Append one run record to the bench's JSON trajectory file.

    ``payload`` is the bench's ``to_json()`` dict (must carry ``bench``);
    the record it becomes is stamped with the git SHA and UTC date/time.
    ``metrics`` (optional) is a flat dict of named gauges/ratios — e.g.
    cache-hit ratios pulled from ``system.metrics()`` — recorded under a
    ``"metrics"`` key so trajectories can track efficiency alongside
    latency. Returns the path written.
    """
    path = os.environ.get(path_env, default_path)
    bench = str(payload.get("bench", "unknown"))
    runs = _load_runs(path, bench)
    now = datetime.now(timezone.utc)
    sha = git_sha()
    record = {
        "git_sha": sha,
        "date": now.date().isoformat(),
        "recorded_at": now.isoformat(timespec="seconds"),
        **payload,
    }
    if metrics:
        record["metrics"] = dict(metrics)
    if sha != "unknown":
        # Same commit re-run: replace, don't double-count in the trajectory.
        runs = [run for run in runs if run.get("git_sha") != sha]
    runs.append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"bench": bench, "runs": runs}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
