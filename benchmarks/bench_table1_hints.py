"""Table 1 — mean activity counts per trace, with and without expert hints.

Paper: hints reduce every activity (tables -14.2%, columns -27.7%, partial
-36.6%, entire -16.6%, all SQL queries -18.1%).
"""

from __future__ import annotations

from repro.harness import run_table1

SEED = 0


def _run():
    return run_table1(seed=SEED, n_tasks=22, repetitions=2)


def test_table1(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    reductions = {activity: reduction for activity, _, _, reduction in result.rows}
    # Every activity drops with hints.
    assert all(r < 0 for r in reductions.values())
    # The overall reduction is material (paper: -18.1%).
    assert reductions["all SQL queries"] < -8
