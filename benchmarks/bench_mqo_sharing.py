"""Ablation A1 — sharing across redundant attempts (paper Sec. 5.2.1).

50 parallel attempts per task executed through the shared-work cache vs
independently. Figure 2's redundancy predicts large savings; we report the
fraction of engine work avoided.
"""

from __future__ import annotations

from repro.harness import run_mqo_ablation


def _run():
    return run_mqo_ablation(seed=0, n_tasks=6, attempts_per_task=50)


def test_mqo_sharing(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.duplicate_fraction > 0.5
    assert result.work_saved > 0.5
