"""Scheduler bench — batched ``submit_many`` vs serial per-agent serving.

N concurrent agents each submit a probe whose sub-plans heavily overlap
with the swarm's (Figure 2's 80-90% redundancy, here by construction:
every agent asks the same join-aggregate plus a per-agent filter drawn
from a small pool). The serial baseline serves each agent on its own
fresh system — independent sessions, no cross-agent sharing; the batched
path serves the whole swarm with one ``submit_many`` admission batch.

Reported per N: engine rows processed and wall-clock, both ways. The
acceptance bar: at N=16 the batch must process >=30% fewer rows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import AgentFirstDataSystem, Brief, Probe
from repro.db import Database
from repro.util.tabulate import format_table

AGENT_COUNTS = (1, 4, 16, 64)

SHARED_JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)


def build_db() -> Database:
    db = Database("sched-bench")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington'),"
        "(4,'Austin','Texas'),(5,'Portland','Oregon')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 5, ("coffee", "tea", "pastry")[i % 3], float(i % 60))
            for i in range(1500)
        ],
    )
    return db


def swarm_probes(n_agents: int) -> list[Probe]:
    """One probe per agent: a swarm-wide join + a filter from a pool of 4."""
    probes = []
    for agent in range(n_agents):
        probes.append(
            Probe(
                queries=(
                    SHARED_JOIN,
                    "SELECT COUNT(*), SUM(amount) FROM sales"
                    f" WHERE store_id = {1 + agent % 4}",
                ),
                brief=Brief(goal="compute the exact answer"),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


@dataclass
class SchedulerBenchResult:
    rows: list[tuple] = field(default_factory=list)
    #: Row-work saving fraction at N=16 (the acceptance metric).
    saving_at_16: float = 0.0

    def render(self) -> str:
        return format_table(
            [
                "agents",
                "serial rows",
                "batched rows",
                "saved",
                "serial ms",
                "batched ms",
            ],
            self.rows,
            title="batched submit_many vs serial per-agent serving",
        )


def run_scheduler_bench() -> SchedulerBenchResult:
    result = SchedulerBenchResult()
    for n_agents in AGENT_COUNTS:
        probes = swarm_probes(n_agents)

        # Build all systems outside the timers: we measure serving, not setup.
        serial_systems = [AgentFirstDataSystem(build_db()) for _ in probes]
        serial_rows = 0
        started = time.perf_counter()
        for system, probe in zip(serial_systems, probes):
            serial_rows += system.submit(probe).rows_processed
        serial_ms = (time.perf_counter() - started) * 1000.0

        batch_system = AgentFirstDataSystem(build_db())
        started = time.perf_counter()
        responses = batch_system.submit_many(probes)
        batched_ms = (time.perf_counter() - started) * 1000.0
        batched_rows = sum(r.rows_processed for r in responses)

        saved = 1.0 - batched_rows / serial_rows if serial_rows else 0.0
        if n_agents == 16:
            result.saving_at_16 = saved
        result.rows.append(
            (
                n_agents,
                serial_rows,
                batched_rows,
                f"{saved:.0%}",
                f"{serial_ms:.1f}",
                f"{batched_ms:.1f}",
            )
        )
    return result


def test_scheduler_batching(benchmark):
    result = benchmark.pedantic(run_scheduler_bench, rounds=1, iterations=1)
    print()
    print(result.render())

    assert result.saving_at_16 >= 0.3


if __name__ == "__main__":
    print(run_scheduler_bench().render())
