"""Scheduler bench — batched ``submit_many`` vs serial per-agent serving.

Four sections, all recorded to machine-readable JSON
(``BENCH_scheduler.json``, override via ``BENCH_SCHEDULER_JSON``) so the
perf trajectory accumulates across PRs:

1. **Sharing** — N concurrent agents each submit a probe whose sub-plans
   heavily overlap with the swarm's (Figure 2's 80-90% redundancy, here by
   construction). The serial baseline serves each agent on its own fresh
   system; the batched path serves the whole swarm with one
   ``submit_many`` admission batch. Acceptance: at N=16 the batch must
   process >=30% fewer rows.
2. **Parallel dispatch speedup** — the same batched path at ``workers=1``
   (serial loop) vs ``workers=4`` (speculative work-group execution) at
   16/64 agents, on a workload with many independent work groups.
   Acceptance: >=1.5x at 64 agents *when the host can actually run
   threads in parallel* (>=4 CPUs and no GIL); on GIL-bound or small
   hosts the table is still recorded and only a no-pathology floor is
   asserted, since CPython serialises pure-Python engine work.
3. **Dispatch backend** — the same batched workload at ``workers=4`` on
   the thread substrate vs the process substrate (spawned workers with
   versioned catalog snapshots; pools pre-started so steady-state serving
   is timed, not cold spawns). This is the table the thread speedup
   section cannot deliver on GIL hosts: on a multi-core machine where
   ``parallel_capable`` is false, the process backend must beat threads
   (speedup > 1x at 64 agents). Small or free-threaded hosts record the
   honest ratio and assert only a no-pathology floor.
4. **Fingerprint memoization** — a repeated-execution workload (every
   subtree of every plan fingerprinted per round, mirroring the
   executor's cache keying) measured against the per-call baseline.
   Acceptance: >=3x fewer node canonicalisations, digests unchanged.
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import dataclass, field

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.plan.fingerprint import (
    FINGERPRINT_STATS,
    fingerprint,
    fingerprint_uncached,
)
from repro.util.tabulate import format_table

AGENT_COUNTS = (1, 4, 16, 64)
SPEEDUP_AGENT_COUNTS = (16, 64)
PARALLEL_WORKERS = 4
JSON_PATH_ENV = "BENCH_SCHEDULER_JSON"
DEFAULT_JSON_PATH = "BENCH_scheduler.json"

SHARED_JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)

#: The row-vs-columnar engine dimension: scan-heavy analytics over a
#: table large enough that per-row interpretation dominates. Asserted
#: floor 2x, target 5x (reported in the JSON next to the measurement).
ENGINE_SPEEDUP_FLOOR = 2.0
ENGINE_SPEEDUP_TARGET = 5.0
ENGINE_TABLE_ROWS = 60_000
ENGINE_QUERIES = (
    "SELECT COUNT(*), SUM(amount), AVG(amount) FROM big WHERE amount > 75.0",
    "SELECT id, amount FROM big WHERE amount > 95.0",
    "SELECT grp, COUNT(*), SUM(amount) FROM big GROUP BY grp",
    "SELECT id, amount * 2.0 FROM big WHERE qty = 7",
    "SELECT COUNT(*) FROM big WHERE amount > 20.0 AND qty < 25",
    "SELECT id FROM big WHERE amount > 99.0 ORDER BY amount DESC LIMIT 10",
)


def build_engine_db() -> Database:
    """One wide-ish analytics table for the engine dimension."""
    db = Database("engine-bench")
    db.execute("CREATE TABLE big (id INT, grp TEXT, amount FLOAT, qty INT)")
    db.insert_rows(
        "big",
        [
            (i, f"g{i % 8}", float((i * 7919) % 1000) / 10.0, i % 50)
            for i in range(ENGINE_TABLE_ROWS)
        ],
    )
    return db


def measure_engines(
    db: Database, queries: tuple[str, ...], reps: int = 3
) -> list[tuple[str, float, float, float]]:
    """Per-query engine time, row vs columnar: (sql, row_ms, col_ms,
    speedup). Best-of-``reps`` after a warm-up run, so the kernel/expr
    memos are hot (steady-state serving, not first-probe compilation)
    and scheduler noise is excluded — this times the executors alone.
    """
    from repro.engine.columnar import ColumnarExecutor
    from repro.engine.executor import ExecContext, Executor

    plans = [db.plan_select(sql) for sql in queries]
    out = []
    for sql, plan in zip(queries, plans):
        timings = {}
        for cls in (Executor, ColumnarExecutor):
            cls(db.catalog, ExecContext()).run(plan)  # warm-up
            best = float("inf")
            for _ in range(reps):
                started = time.perf_counter()
                cls(db.catalog, ExecContext()).run(plan)
                best = min(best, time.perf_counter() - started)
            timings[cls] = best * 1000.0
        row_ms = timings[Executor]
        col_ms = timings[ColumnarExecutor]
        out.append((sql, row_ms, col_ms, row_ms / col_ms if col_ms else 0.0))
    return out


def build_db() -> Database:
    db = Database("sched-bench")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington'),"
        "(4,'Austin','Texas'),(5,'Portland','Oregon')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 5, ("coffee", "tea", "pastry")[i % 3], float(i % 60))
            for i in range(1500)
        ],
    )
    return db


def swarm_probes(n_agents: int) -> list[Probe]:
    """One probe per agent: a swarm-wide join + a filter from a pool of 4."""
    probes = []
    for agent in range(n_agents):
        probes.append(
            Probe(
                queries=(
                    SHARED_JOIN,
                    "SELECT COUNT(*), SUM(amount) FROM sales"
                    f" WHERE store_id = {1 + agent % 4}",
                ),
                brief=Brief(goal="compute the exact answer"),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


def parallel_probes(n_agents: int) -> list[Probe]:
    """The speedup workload: many *independent* work groups.

    Each agent asks the swarm-wide join plus one aggregate from a pool of
    8 thresholds and one group-by from a pool of 4 stores: a 64-agent
    batch carries 13 distinct work groups — enough independent engine
    runs to occupy a worker pool.
    """
    probes = []
    for agent in range(n_agents):
        threshold = 6 * (agent % 8)
        probes.append(
            Probe(
                queries=(
                    SHARED_JOIN,
                    "SELECT COUNT(*), SUM(amount), MIN(amount) FROM sales"
                    f" WHERE amount > {threshold}.0",
                    "SELECT product, COUNT(*) FROM sales"
                    f" WHERE store_id = {1 + agent % 4} GROUP BY product",
                ),
                brief=Brief(goal="compute the exact answer"),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


def effective_parallelism() -> bool:
    """Can this host actually overlap pure-Python engine work?"""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return (os.cpu_count() or 1) >= PARALLEL_WORKERS and not gil_enabled


def process_backend_capable() -> bool:
    """The process backend's winning condition: enough cores to overlap
    engine work, and GIL-bound threads that cannot (so there is slack for
    spawned workers to reclaim)."""
    gil_enabled = getattr(sys, "_is_gil_enabled", lambda: True)()
    return (os.cpu_count() or 1) >= PARALLEL_WORKERS and gil_enabled


@dataclass
class SchedulerBenchResult:
    #: (agents, serial_rows, batched_rows, saved, serial_ms, batched_ms).
    sharing_rows: list[tuple] = field(default_factory=list)
    #: (agents, groups, workers_1_ms, workers_n_ms, speedup).
    speedup_rows: list[tuple] = field(default_factory=list)
    #: (agents, units, thread_ms, process_ms, speedup) per agent count.
    backend_rows: list[tuple] = field(default_factory=list)
    #: Row-work saving fraction at N=16 (the sharing acceptance metric).
    saving_at_16: float = 0.0
    #: workers=1 / workers=N wall-clock ratio at 64 agents.
    speedup_at_64: float = 0.0
    #: thread-backend / process-backend wall-clock ratio at 64 agents.
    process_speedup_at_64: float = 0.0
    process_capable: bool = False
    #: Canonicalisation-work reduction factor and digest equality.
    fingerprint_reduction: float = 0.0
    fingerprint_digests_match: bool = False
    fingerprint_uncached_visits: int = 0
    fingerprint_memoized_visits: int = 0
    parallel_capable: bool = False
    #: (sql, row_ms, columnar_ms, speedup) per engine-dimension query.
    engine_rows: list[tuple] = field(default_factory=list)
    #: Aggregate row-engine / columnar-engine time over the whole corpus.
    engine_speedup: float = 0.0

    def render(self) -> str:
        sections = [
            format_table(
                [
                    "agents",
                    "serial rows",
                    "batched rows",
                    "saved",
                    "serial ms",
                    "batched ms",
                ],
                [
                    (
                        agents,
                        serial_rows,
                        batched_rows,
                        f"{saved:.0%}",
                        f"{serial_ms:.1f}",
                        f"{batched_ms:.1f}",
                    )
                    for agents, serial_rows, batched_rows, saved, serial_ms, batched_ms in self.sharing_rows
                ],
                title="batched submit_many vs serial per-agent serving",
            ),
            format_table(
                [
                    "agents",
                    "groups",
                    "workers=1 ms",
                    f"workers={PARALLEL_WORKERS} ms",
                    "speedup",
                ],
                [
                    (
                        agents,
                        groups,
                        f"{serial_ms:.1f}",
                        f"{parallel_ms:.1f}",
                        f"{speedup:.2f}x",
                    )
                    for agents, groups, serial_ms, parallel_ms, speedup in self.speedup_rows
                ],
                title=(
                    "parallel work-group dispatch"
                    f" (parallel-capable host: {self.parallel_capable})"
                ),
            ),
            format_table(
                [
                    "agents",
                    "units",
                    "thread ms",
                    "process ms",
                    "speedup",
                ],
                [
                    (
                        agents,
                        units,
                        f"{thread_ms:.1f}",
                        f"{process_ms:.1f}",
                        f"{speedup:.2f}x",
                    )
                    for agents, units, thread_ms, process_ms, speedup in self.backend_rows
                ],
                title=(
                    f"dispatch backend at workers={PARALLEL_WORKERS}"
                    f" (process-capable host: {self.process_capable})"
                ),
            ),
            format_table(
                ["path", "node canonicalisations"],
                [
                    ("per-call (PR-1 baseline)", self.fingerprint_uncached_visits),
                    ("memoized one-pass", self.fingerprint_memoized_visits),
                    ("reduction", f"{self.fingerprint_reduction:.1f}x"),
                ],
                title="fingerprint memoization (repeated-execution workload)",
            ),
            format_table(
                ["query", "row ms", "columnar ms", "speedup"],
                [
                    (
                        sql if len(sql) <= 56 else sql[:53] + "...",
                        f"{row_ms:.1f}",
                        f"{col_ms:.1f}",
                        f"{speedup:.2f}x",
                    )
                    for sql, row_ms, col_ms, speedup in self.engine_rows
                ]
                + [
                    (
                        "overall",
                        "",
                        "",
                        f"{self.engine_speedup:.2f}x"
                        f" (floor {ENGINE_SPEEDUP_FLOOR:.0f}x,"
                        f" target {ENGINE_SPEEDUP_TARGET:.0f}x)",
                    )
                ],
                title=(
                    "row vs columnar engine"
                    f" ({ENGINE_TABLE_ROWS} rows, memos hot)"
                ),
            ),
        ]
        return "\n\n".join(sections)

    def to_json(self) -> dict:
        return {
            "bench": "scheduler",
            "host": {
                "cpu_count": os.cpu_count(),
                "gil_enabled": getattr(sys, "_is_gil_enabled", lambda: True)(),
                "python": sys.version.split()[0],
                "parallel_capable": self.parallel_capable,
                "process_backend_capable": self.process_capable,
            },
            "sharing": [
                {
                    "agents": agents,
                    "serial_rows": serial_rows,
                    "batched_rows": batched_rows,
                    "saved_fraction": round(saved, 4),
                    "serial_ms": round(serial_ms, 2),
                    "batched_ms": round(batched_ms, 2),
                }
                for agents, serial_rows, batched_rows, saved, serial_ms, batched_ms in self.sharing_rows
            ],
            "speedup": [
                {
                    "agents": agents,
                    "work_groups": groups,
                    "workers": PARALLEL_WORKERS,
                    "workers_1_ms": round(serial_ms, 2),
                    "workers_n_ms": round(parallel_ms, 2),
                    "speedup": round(speedup, 3),
                }
                for agents, groups, serial_ms, parallel_ms, speedup in self.speedup_rows
            ],
            "backend": [
                {
                    "agents": agents,
                    "workers": PARALLEL_WORKERS,
                    "units_dispatched": units,
                    "thread_ms": round(thread_ms, 2),
                    "process_ms": round(process_ms, 2),
                    "speedup": round(speedup, 3),
                }
                for agents, units, thread_ms, process_ms, speedup in self.backend_rows
            ],
            "fingerprint": {
                "uncached_node_visits": self.fingerprint_uncached_visits,
                "memoized_node_visits": self.fingerprint_memoized_visits,
                "reduction": round(self.fingerprint_reduction, 2),
                "digests_match": self.fingerprint_digests_match,
            },
            "row_vs_columnar": {
                "table_rows": ENGINE_TABLE_ROWS,
                "queries": [
                    {
                        "sql": sql,
                        "row_ms": round(row_ms, 2),
                        "columnar_ms": round(col_ms, 2),
                        "speedup": round(speedup, 3),
                    }
                    for sql, row_ms, col_ms, speedup in self.engine_rows
                ],
                "overall_speedup": round(self.engine_speedup, 3),
                "floor": ENGINE_SPEEDUP_FLOOR,
                "target": ENGINE_SPEEDUP_TARGET,
            },
        }


def run_sharing_bench(result: SchedulerBenchResult) -> None:
    """Row-work accounting: sharing is measured at ``workers=1``.

    Speculative execution can race shared subtrees into double computation
    (answers identical, accounting inflated and timing-dependent); the
    serial loop keeps this table — the cross-PR frugality trajectory —
    deterministic. Wall-clock at higher worker counts is the *next*
    table's job.
    """
    for n_agents in AGENT_COUNTS:
        probes = swarm_probes(n_agents)

        # Build all systems outside the timers: we measure serving, not setup.
        serial_systems = [AgentFirstDataSystem(build_db(), workers=1) for _ in probes]
        serial_rows = 0
        started = time.perf_counter()
        for system, probe in zip(serial_systems, probes):
            serial_rows += system.submit(probe).rows_processed
        serial_ms = (time.perf_counter() - started) * 1000.0

        batch_system = AgentFirstDataSystem(build_db(), workers=1)
        started = time.perf_counter()
        responses = batch_system.submit_many(probes)
        batched_ms = (time.perf_counter() - started) * 1000.0
        batched_rows = sum(r.rows_processed for r in responses)

        saved = 1.0 - batched_rows / serial_rows if serial_rows else 0.0
        if n_agents == 16:
            result.saving_at_16 = saved
        result.sharing_rows.append(
            (n_agents, serial_rows, batched_rows, saved, serial_ms, batched_ms)
        )
        # Registry-backed efficiency gauges for the trajectory (last —
        # largest — swarm size wins): how much of the batch's engine work
        # the subplan cache absorbed.
        snap = batch_system.metrics()
        result.cache_metrics = {
            "swarm_size": n_agents,
            "subplan_cache_hit_ratio": snap.get(
                "repro_engine_subplan_cache_hit_ratio"
            ),
            "subplan_cache_hits": snap.get("repro_engine_subplan_cache_hits"),
            "subplan_cache_misses": snap.get("repro_engine_subplan_cache_misses"),
            "subplan_cache_entries": snap.get("repro_engine_subplan_cache_entries"),
        }


def run_speedup_bench(result: SchedulerBenchResult) -> None:
    """Wall-clock of the batched path: serial loop vs speculative pool."""
    for n_agents in SPEEDUP_AGENT_COUNTS:
        probes = parallel_probes(n_agents)
        timings: dict[int, float] = {}
        groups = 0
        for workers in (1, PARALLEL_WORKERS):
            # Fresh system per measurement: identical cold caches/history.
            system = AgentFirstDataSystem(build_db(), workers=workers)
            started = time.perf_counter()
            system.submit_many(probes)
            timings[workers] = (time.perf_counter() - started) * 1000.0
            if workers > 1:
                # Independent engine runs the speculative pool overlapped.
                groups = system.scheduler.speculative_executions
        speedup = (
            timings[1] / timings[PARALLEL_WORKERS]
            if timings[PARALLEL_WORKERS]
            else 0.0
        )
        if n_agents == 64:
            result.speedup_at_64 = speedup
        result.speedup_rows.append(
            (n_agents, groups, timings[1], timings[PARALLEL_WORKERS], speedup)
        )


def run_backend_bench(result: SchedulerBenchResult) -> None:
    """Thread vs process substrate for the same speculative workload.

    Pools are pre-started (spawn + snapshot ship happen before the timer)
    so the table records steady-state serving: a long-lived system pays
    cold start once, then reuses the pool across every batch until a
    write bumps the catalog version. Fresh system per measurement keeps
    caches/history identically cold.

    ``units`` is the *worker-side* dispatch count: the scheduler falls
    back to threads silently when the pool breaks, and a fallback run
    must not be recorded as a process timing — the acceptance test
    asserts ``units > 0`` so a broken pool fails loudly instead of
    corrupting the perf-trajectory artifact.
    """
    for n_agents in SPEEDUP_AGENT_COUNTS:
        probes = parallel_probes(n_agents)
        timings: dict[str, float] = {}
        units = 0
        for backend in ("thread", "process"):
            system = AgentFirstDataSystem(
                build_db(),
                config=SystemConfig(dispatch_backend=backend),
                workers=PARALLEL_WORKERS,
            )
            system.prestart()
            started = time.perf_counter()
            system.submit_many(probes)
            timings[backend] = (time.perf_counter() - started) * 1000.0
            if backend == "process":
                units = system.scheduler._dispatcher.units_dispatched
            system.close()
        speedup = (
            timings["thread"] / timings["process"] if timings["process"] else 0.0
        )
        if n_agents == 64:
            result.process_speedup_at_64 = speedup
        result.backend_rows.append(
            (n_agents, units, timings["thread"], timings["process"], speedup)
        )


def run_fingerprint_bench(result: SchedulerBenchResult, rounds: int = 4) -> None:
    """Repeated-execution canonicalisation work: per-call vs memoized.

    Mirrors the serving path's demand — every subtree of every plan needs
    a strict digest per execution (executor cache keys) plus root digests
    per query (history, grouping, advisor) — repeated ``rounds`` times, as
    when a swarm re-asks overlapping probes across turns.
    """
    db = build_db()
    sqls = [probe.queries for probe in parallel_probes(8)]
    flat = [sql for queries in sqls for sql in queries]

    baseline_plans = [db.plan_select(sql) for sql in flat]
    FINGERPRINT_STATS.reset()
    uncached_digests = []
    for _ in range(rounds):
        for plan in baseline_plans:
            for node in plan.walk():
                uncached_digests.append(fingerprint_uncached(node, strict=True))
            uncached_digests.append(fingerprint_uncached(plan, strict=False))
    uncached_visits = FINGERPRINT_STATS.nodes_canonicalised

    memo_plans = [db.plan_select(sql) for sql in flat]
    FINGERPRINT_STATS.reset()
    memoized_digests = []
    for _ in range(rounds):
        for plan in memo_plans:
            for node in plan.walk():
                memoized_digests.append(fingerprint(node, strict=True))
            memoized_digests.append(fingerprint(plan, strict=False))
    memoized_visits = FINGERPRINT_STATS.nodes_canonicalised

    result.fingerprint_uncached_visits = uncached_visits
    result.fingerprint_memoized_visits = memoized_visits
    result.fingerprint_reduction = uncached_visits / max(1, memoized_visits)
    result.fingerprint_digests_match = uncached_digests == memoized_digests


def run_engine_bench(result: SchedulerBenchResult) -> None:
    """Row-engine vs columnar-engine time on the scan-heavy corpus."""
    db = build_engine_db()
    result.engine_rows = measure_engines(db, ENGINE_QUERIES)
    row_total = sum(row_ms for _, row_ms, _, _ in result.engine_rows)
    col_total = sum(col_ms for _, _, col_ms, _ in result.engine_rows)
    result.engine_speedup = row_total / col_total if col_total else 0.0


def run_scheduler_bench() -> SchedulerBenchResult:
    result = SchedulerBenchResult()
    result.parallel_capable = effective_parallelism()
    result.process_capable = process_backend_capable()
    run_sharing_bench(result)
    run_speedup_bench(result)
    run_backend_bench(result)
    run_fingerprint_bench(result)
    run_engine_bench(result)
    return result


def write_json(result: SchedulerBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(
        JSON_PATH_ENV,
        DEFAULT_JSON_PATH,
        result.to_json(),
        metrics=getattr(result, "cache_metrics", None),
    )


def test_scheduler_batching(benchmark):
    result = benchmark.pedantic(run_scheduler_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    assert result.saving_at_16 >= 0.3
    assert result.fingerprint_digests_match
    assert result.fingerprint_reduction >= 3.0
    # The vectorized-executor acceptance bar: >=2x on engine time, with
    # the 5x target reported next to the measurement in the JSON.
    assert result.engine_speedup >= ENGINE_SPEEDUP_FLOOR
    if result.parallel_capable:
        # The real acceptance bar: independent work groups must overlap.
        assert result.speedup_at_64 >= 1.5
    else:
        # GIL-bound / small host: parallel dispatch cannot beat the serial
        # loop (CPython serialises pure-Python engine work), but it must
        # not pathologically regress either. The JSON records the honest
        # ratio for hosts that can check the 1.5x bar.
        assert result.speedup_at_64 >= 0.4
    # Worker-side units prove the process measurement really ran on the
    # pool (the scheduler's thread fallback would otherwise record a
    # thread-vs-thread row mislabeled as "process").
    assert all(units > 0 for _, units, _, _, _ in result.backend_rows)
    if result.process_capable:
        # The tentpole bar: on a multi-core host where the GIL made
        # parallel_capable false, the process backend must actually beat
        # the thread backend at 64 agents.
        assert result.process_speedup_at_64 > 1.0
    else:
        # Single/few-core or free-threaded host: the process pool has no
        # slack to reclaim and pays pickling overhead; record the honest
        # ratio, assert only that it is not pathological.
        assert result.process_speedup_at_64 >= 0.1


if __name__ == "__main__":
    result = run_scheduler_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
