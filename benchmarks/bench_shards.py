"""Shard-tier bench — served-probe throughput at 1 vs 4 vs 16 shards.

The tentpole claim of the sharded serving tier: a multi-tenant swarm
whose probes are tenant-local (``WHERE tenant = 'tX'`` pins the
partition column) scales *out* — the router prunes each probe to its
owner shard, every shard holds only its arc's slice of the fact table,
and per-probe scan work drops with the shard count while the serving
surface stays the bare system's.

The swarm: 64 tenants, each agent bound to one tenant, each submitting a
distinct tenant-pinned aggregate (distinct predicates, so no MQO dedupe
flatters any path). Probes are served one at a time — throughput here
measures per-probe serving cost, not admission batching (that is
``bench_gateway``'s story). A small cross-shard scatter sample is timed
alongside to keep the genuinely-global path honest.

Recorded to machine-readable JSON (``BENCH_shards.json``, override via
``BENCH_SHARDS_JSON``) next to the other perf trajectories. Acceptance:
>=2x served-probe throughput at 16 shards vs 1 at the 1024-agent size.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core import Probe, SystemConfig
from repro.db import Database
from repro.shard import ShardedSystem
from repro.util.tabulate import format_table

TENANTS = 64
ROWS_PER_TENANT = 100
SHARD_COUNTS = (1, 4, 16)
AGENT_COUNTS = (256, 1024)
SCATTER_SAMPLES = 4
PARTITION = {"sales": "tenant"}
JSON_PATH_ENV = "BENCH_SHARDS_JSON"
DEFAULT_JSON_PATH = "BENCH_shards.json"


def build_tenant_db() -> Database:
    db = Database("shardbench")
    db.execute("CREATE TABLE sales (tenant TEXT, qty INT, amount FLOAT)")
    rows = []
    for tenant in range(TENANTS):
        for i in range(ROWS_PER_TENANT):
            rows.append((f"t{tenant}", i, float((i * 7) % 97)))
    db.insert_rows("sales", rows)
    return db


def tenant_probes(n_agents: int) -> list[Probe]:
    """One tenant-local probe per agent.

    Every agent's SQL is distinct — the trailing always-true bound is
    unique per agent *and* per swarm size — so neither the history
    answerer nor MQO dedupe collapses the swarm: each probe pays its own
    scan on whichever tier serves it.
    """
    return [
        Probe.sql(
            "SELECT COUNT(*), SUM(amount) FROM sales"
            f" WHERE tenant = 't{index % TENANTS}' AND qty >= {index % 7}"
            f" AND qty != {ROWS_PER_TENANT + n_agents * 16 + index}"
        )
        for index in range(n_agents)
    ]


@dataclass
class ShardBenchResult:
    #: (shards, agents, total_ms, ms_per_probe, probes_per_s).
    throughput_rows: list[tuple] = field(default_factory=list)
    #: (shards, scatter_ms_per_probe).
    scatter_rows: list[tuple] = field(default_factory=list)
    #: throughput(16 shards) / throughput(1 shard) at 1024 agents.
    speedup_at_1024: float = 0.0

    def render(self) -> str:
        throughput = format_table(
            ["shards", "agents", "total ms", "ms/probe", "probes/s"],
            [
                (
                    shards,
                    agents,
                    f"{total_ms:.0f}",
                    f"{ms_per_probe:.2f}",
                    f"{probes_per_s:.1f}",
                )
                for shards, agents, total_ms, ms_per_probe, probes_per_s in self.throughput_rows
            ],
            title="tenant-local probe serving (partition-pruned routing)",
        )
        scatter = format_table(
            ["shards", "scatter ms/probe"],
            [
                (shards, f"{scatter_ms:.2f}")
                for shards, scatter_ms in self.scatter_rows
            ],
            title="cross-shard scatter-gather (global aggregate)",
        )
        summary = (
            f"\nserved-probe speedup at 1024 agents, 16 shards vs 1:"
            f" {self.speedup_at_1024:.1f}x"
        )
        return throughput + "\n\n" + scatter + summary

    def to_json(self) -> dict:
        return {
            "bench": "shards",
            "tenants": TENANTS,
            "rows_per_tenant": ROWS_PER_TENANT,
            "throughput": [
                {
                    "shards": shards,
                    "agents": agents,
                    "total_ms": round(total_ms, 2),
                    "ms_per_probe": round(ms_per_probe, 3),
                    "probes_per_s": round(probes_per_s, 1),
                }
                for shards, agents, total_ms, ms_per_probe, probes_per_s in self.throughput_rows
            ],
            "scatter": [
                {"shards": shards, "ms_per_probe": round(scatter_ms, 3)}
                for shards, scatter_ms in self.scatter_rows
            ],
            "speedup_16_vs_1_at_1024": round(self.speedup_at_1024, 2),
        }


def run_shard_bench() -> ShardBenchResult:
    result = ShardBenchResult()
    source = build_tenant_db()  # shards>1 copy it; shards=1 serves it read-only
    throughput: dict[tuple[int, int], float] = {}
    for shards in SHARD_COUNTS:
        tier = ShardedSystem(
            source,
            shards=shards,
            partition=PARTITION,
            config=SystemConfig(enable_steering=False, enable_memory=False),
            workers=1,
        )
        try:
            for n_agents in AGENT_COUNTS:
                probes = tenant_probes(n_agents)
                started = time.perf_counter()
                for probe in probes:
                    response = tier.submit(probe)
                    assert response.outcomes[0].status == "ok"
                total_ms = (time.perf_counter() - started) * 1000.0
                probes_per_s = n_agents / (total_ms / 1000.0)
                throughput[(shards, n_agents)] = probes_per_s
                result.throughput_rows.append(
                    (shards, n_agents, total_ms, total_ms / n_agents, probes_per_s)
                )
            started = time.perf_counter()
            for index in range(SCATTER_SAMPLES):
                response = tier.submit(
                    Probe.sql(
                        "SELECT COUNT(*), SUM(amount), AVG(qty) FROM sales"
                        f" WHERE qty >= {index}"
                    )
                )
                assert response.outcomes[0].status == "ok"
            scatter_ms = (time.perf_counter() - started) * 1000.0 / SCATTER_SAMPLES
            result.scatter_rows.append((shards, scatter_ms))
        finally:
            tier.close()
    result.speedup_at_1024 = throughput[(16, 1024)] / throughput[(1, 1024)]
    return result


def write_json(result: ShardBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(JSON_PATH_ENV, DEFAULT_JSON_PATH, result.to_json())


def test_sharded_tier_throughput(benchmark):
    result = benchmark.pedantic(run_shard_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    # The acceptance bar: tenant-local serving at 16 shards must at least
    # double the single-system throughput at the 1024-agent swarm size.
    assert result.speedup_at_1024 >= 2.0


if __name__ == "__main__":
    result = run_shard_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
