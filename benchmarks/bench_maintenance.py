"""Maintenance bench — does idle-time sleeper-agent work actually pay?

The scenario the runtime exists for: a swarm of agents re-asks the same
hot shared subplan turn after turn, with a write burst between turns
(so neither answer history nor the subplan cache can carry results
across turns — exactly when maintenance-off recomputes everything).
Between turns the maintenance runtime gets an idle window
(``run_pending()``): it rebuilds the invalidated materialized view,
keeps its auto-built indexes, refreshes statistics, and pre-warms the
cache — all off the serving path. Only the serving calls are timed.

Workload: 64 agents x (shared join + per-agent equality filter),
1 warm-up turn + ``REPEAT_TURNS`` >= 3 steady-state repeat turns.
Acceptance: steady-state turns must be >=1.3x faster with maintenance
on, with the runtime provably having built views *and* indexes (so a
silently inert runtime cannot pass on noise). Results append to
``BENCH_maintenance.json`` keyed by git SHA + date — the cross-PR
trajectory artifact CI uploads.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from bench_record import append_run
from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.maintenance import MaintenanceConfig
from repro.util.tabulate import format_table

AGENTS = 64
REPEAT_TURNS = 3  # steady-state turns, after one warm-up turn
SALES_ROWS = 30_000
WRITE_BURST = 10
SPEEDUP_FLOOR = 1.3
JSON_PATH_ENV = "BENCH_MAINTENANCE_JSON"
DEFAULT_JSON_PATH = "BENCH_maintenance.json"

SHARED_JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)


def build_db() -> Database:
    db = Database("maint-bench")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington'),"
        "(4,'Austin','Texas'),(5,'Portland','Oregon')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 5, ("coffee", "tea", "pastry")[i % 3], float(i % 60))
            for i in range(SALES_ROWS)
        ],
    )
    return db


def swarm(n_agents: int) -> list[Probe]:
    return [
        Probe(
            queries=(
                SHARED_JOIN,
                "SELECT COUNT(*), SUM(amount) FROM sales"
                f" WHERE store_id = {1 + agent % 5}",
            ),
            brief=Brief(goal="compute the exact answer"),
            agent_id=f"agent-{agent}",
        )
        for agent in range(n_agents)
    ]


@dataclass
class MaintenanceBenchResult:
    #: (turn, phase, off_ms, on_ms, off_rows, on_rows, speedup).
    turn_rows: list[tuple] = field(default_factory=list)
    steady_state_speedup: float = 0.0
    steady_state_row_reduction: float = 0.0
    runtime_stats: dict = field(default_factory=dict)

    def render(self) -> str:
        return format_table(
            [
                "turn",
                "phase",
                "maint-off ms",
                "maint-on ms",
                "off rows",
                "on rows",
                "speedup",
            ],
            [
                (
                    turn,
                    phase,
                    f"{off_ms:.1f}",
                    f"{on_ms:.1f}",
                    off_rows,
                    on_rows,
                    f"{speedup:.2f}x",
                )
                for turn, phase, off_ms, on_ms, off_rows, on_rows, speedup in self.turn_rows
            ],
            title=(
                f"repeated hot-subplan workload, {AGENTS} agents, write burst per"
                f" turn (steady-state speedup {self.steady_state_speedup:.2f}x)"
            ),
        )

    def to_json(self) -> dict:
        return {
            "bench": "maintenance",
            "agents": AGENTS,
            "repeat_turns": REPEAT_TURNS,
            "sales_rows": SALES_ROWS,
            "turns": [
                {
                    "turn": turn,
                    "phase": phase,
                    "maintenance_off_ms": round(off_ms, 2),
                    "maintenance_on_ms": round(on_ms, 2),
                    "rows_processed_off": off_rows,
                    "rows_processed_on": on_rows,
                    "speedup": round(speedup, 3),
                }
                for turn, phase, off_ms, on_ms, off_rows, on_rows, speedup in self.turn_rows
            ],
            "steady_state_speedup": round(self.steady_state_speedup, 3),
            "steady_state_row_reduction": round(self.steady_state_row_reduction, 4),
            "runtime": self.runtime_stats,
        }


def run_maintenance_bench() -> MaintenanceBenchResult:
    result = MaintenanceBenchResult()
    config = SystemConfig(
        enable_maintenance=True,
        maintenance=MaintenanceConfig(index_min_occurrences=3, index_min_rows=256),
    )
    # workers=1 on both sides: the speedup must come from maintenance
    # artifacts, not dispatch parallelism (measured by bench_scheduler).
    on = AgentFirstDataSystem(build_db(), config=config, workers=1)
    off = AgentFirstDataSystem(build_db(), workers=1)

    next_id = SALES_ROWS
    steady_off: list[float] = []
    steady_on: list[float] = []
    steady_rows_off = steady_rows_on = 0
    for turn in range(1 + REPEAT_TURNS):
        burst = [
            (next_id + j, 1 + j % 5, "tea", 9.0) for j in range(WRITE_BURST)
        ]
        next_id += WRITE_BURST
        # The write burst invalidates history, caches, and views on both
        # systems; only the maintenance side repairs itself off-path.
        on.db.insert_rows("sales", burst)
        off.db.insert_rows("sales", burst)
        on.maintenance.run_pending()  # the idle window (untimed)

        started = time.perf_counter()
        responses_on = on.submit_many(swarm(AGENTS))
        on_ms = (time.perf_counter() - started) * 1000.0
        started = time.perf_counter()
        responses_off = off.submit_many(swarm(AGENTS))
        off_ms = (time.perf_counter() - started) * 1000.0

        rows_on = sum(r.rows_processed for r in responses_on)
        rows_off = sum(r.rows_processed for r in responses_off)
        phase = "warm-up" if turn == 0 else "steady"
        if turn > 0:
            steady_on.append(on_ms)
            steady_off.append(off_ms)
            steady_rows_on += rows_on
            steady_rows_off += rows_off
        result.turn_rows.append(
            (
                turn,
                phase,
                off_ms,
                on_ms,
                rows_off,
                rows_on,
                off_ms / on_ms if on_ms else 0.0,
            )
        )

    mean_on = sum(steady_on) / len(steady_on)
    mean_off = sum(steady_off) / len(steady_off)
    result.steady_state_speedup = mean_off / mean_on if mean_on else 0.0
    result.steady_state_row_reduction = (
        1.0 - steady_rows_on / steady_rows_off if steady_rows_off else 0.0
    )
    result.runtime_stats = on.maintenance.stats()
    on.close()
    off.close()
    return result


def write_json(result: MaintenanceBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    return append_run(JSON_PATH_ENV, DEFAULT_JSON_PATH, result.to_json())


def test_maintenance_speedup(benchmark):
    result = benchmark.pedantic(run_maintenance_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    # The runtime must have genuinely acted — an inert runtime timing
    # noise-vs-noise cannot pass.
    assert result.runtime_stats["views_built"] > 0
    assert result.runtime_stats["indexes_built"] > 0
    # Acted-on advice must convert to engine-work savings...
    assert result.steady_state_row_reduction >= 0.5
    # ...and to wall-clock on the steady-state repeat turns.
    assert result.steady_state_speedup >= SPEEDUP_FLOOR


if __name__ == "__main__":
    result = run_maintenance_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
