"""Gateway bench — streaming admission vs per-probe serving.

The tentpole claim of the gateway redesign: *uncoordinated* agents — each
opening its own session and submitting one probe, with nobody assembling
a batch — should recover (almost) all of the cross-agent sharing that a
hand-assembled single ``submit_many`` batch achieves, because the
admission loop forms the batch for them.

Three serving paths per swarm size (16 / 64 agents), all recorded to
machine-readable JSON (``BENCH_gateway.json``, override via
``BENCH_GATEWAY_JSON``) so the perf trajectory accumulates across PRs
next to ``BENCH_scheduler.json``:

1. **per-probe submit** — every agent served alone on its own fresh
   system: zero sharing, the paper's status-quo baseline.
2. **hand-assembled batch** — the whole swarm in one ``submit_many``
   admission window: the sharing ceiling.
3. **streaming admission** — one fresh system; N threads each open a
   session and submit independently; the gateway coalesces whatever is in
   flight into admission windows (``max_wait`` = 50 ms here).

Reported per size: rows processed per path, sharing recovered
(``(serial - streamed) / (serial - batch)``), wall-clock, and
window-formation stats (windows formed, mean size, formation latency).
Acceptance: streaming at 64 uncoordinated agents recovers >=80% of the
hand-assembled batch's rows-saved sharing. Row accounting runs at
``workers=1`` for determinism, matching ``bench_scheduler``'s sharing
table.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from bench_scheduler import (
    ENGINE_QUERIES,
    ENGINE_SPEEDUP_FLOOR,
    ENGINE_SPEEDUP_TARGET,
    ENGINE_TABLE_ROWS,
    build_db,
    build_engine_db,
    measure_engines,
    swarm_probes,
)
from repro.core import AgentFirstDataSystem, Probe, SystemConfig
from repro.util.tabulate import format_table

AGENT_COUNTS = (16, 64)
STREAM_MAX_WAIT = 0.05  # generous: slow CI hosts must still coalesce
STREAM_ENGINE_AGENTS = 8
JSON_PATH_ENV = "BENCH_GATEWAY_JSON"
DEFAULT_JSON_PATH = "BENCH_gateway.json"


@dataclass
class GatewayBenchResult:
    #: (agents, serial_rows, batch_rows, stream_rows, recovered,
    #:  serial_ms, batch_ms, stream_ms).
    sharing_rows: list[tuple] = field(default_factory=list)
    #: (agents, windows, mean_window, mean_formation_ms, max_formation_ms).
    window_rows: list[tuple] = field(default_factory=list)
    #: Sharing-recovered fraction at 64 agents (the acceptance metric).
    recovered_at_64: float = 0.0
    #: (sql, row_ms, columnar_ms, speedup) — engine time, memos hot.
    engine_rows: list[tuple] = field(default_factory=list)
    #: Aggregate row-engine / columnar-engine time over the corpus.
    engine_speedup: float = 0.0
    #: Streamed-admission wall-clock, row vs columnar engine, on the
    #: scan-heavy workload: (agents, row_ms, columnar_ms, ratio).
    #: Reported, not asserted — window formation adds timing noise.
    stream_engine_row: tuple | None = None

    def render(self) -> str:
        sharing = format_table(
            [
                "agents",
                "serial rows",
                "batch rows",
                "stream rows",
                "recovered",
                "serial ms",
                "batch ms",
                "stream ms",
            ],
            [
                (
                    agents,
                    serial_rows,
                    batch_rows,
                    stream_rows,
                    f"{recovered:.0%}",
                    f"{serial_ms:.1f}",
                    f"{batch_ms:.1f}",
                    f"{stream_ms:.1f}",
                )
                for (
                    agents,
                    serial_rows,
                    batch_rows,
                    stream_rows,
                    recovered,
                    serial_ms,
                    batch_ms,
                    stream_ms,
                ) in self.sharing_rows
            ],
            title=(
                "streaming admission vs per-probe submit vs hand-assembled"
                " batch (uncoordinated agents)"
            ),
        )
        windows = format_table(
            [
                "agents",
                "windows",
                "mean window size",
                "mean formation ms",
                "max formation ms",
            ],
            [
                (
                    agents,
                    windows_formed,
                    f"{mean_size:.1f}",
                    f"{mean_ms:.2f}",
                    f"{max_ms:.2f}",
                )
                for agents, windows_formed, mean_size, mean_ms, max_ms in self.window_rows
            ],
            title="admission window formation",
        )
        engine_table_rows = [
            (
                sql if len(sql) <= 56 else sql[:53] + "...",
                f"{row_ms:.1f}",
                f"{col_ms:.1f}",
                f"{speedup:.2f}x",
            )
            for sql, row_ms, col_ms, speedup in self.engine_rows
        ] + [
            (
                "overall",
                "",
                "",
                f"{self.engine_speedup:.2f}x"
                f" (floor {ENGINE_SPEEDUP_FLOOR:.0f}x,"
                f" target {ENGINE_SPEEDUP_TARGET:.0f}x)",
            )
        ]
        if self.stream_engine_row is not None:
            agents, row_ms, col_ms, ratio = self.stream_engine_row
            engine_table_rows.append(
                (
                    f"streamed end-to-end ({agents} agents)",
                    f"{row_ms:.1f}",
                    f"{col_ms:.1f}",
                    f"{ratio:.2f}x",
                )
            )
        engine = format_table(
            ["query", "row ms", "columnar ms", "speedup"],
            engine_table_rows,
            title=f"row vs columnar engine ({ENGINE_TABLE_ROWS} rows, memos hot)",
        )
        return sharing + "\n\n" + windows + "\n\n" + engine

    def to_json(self) -> dict:
        return {
            "bench": "gateway",
            "stream_max_wait_s": STREAM_MAX_WAIT,
            "sharing": [
                {
                    "agents": agents,
                    "serial_rows": serial_rows,
                    "batch_rows": batch_rows,
                    "stream_rows": stream_rows,
                    "sharing_recovered": round(recovered, 4),
                    "serial_ms": round(serial_ms, 2),
                    "batch_ms": round(batch_ms, 2),
                    "stream_ms": round(stream_ms, 2),
                }
                for (
                    agents,
                    serial_rows,
                    batch_rows,
                    stream_rows,
                    recovered,
                    serial_ms,
                    batch_ms,
                    stream_ms,
                ) in self.sharing_rows
            ],
            "windows": [
                {
                    "agents": agents,
                    "windows_streamed": windows_formed,
                    "mean_window_size": round(mean_size, 2),
                    "mean_formation_ms": round(mean_ms, 3),
                    "max_formation_ms": round(max_ms, 3),
                }
                for agents, windows_formed, mean_size, mean_ms, max_ms in self.window_rows
            ],
            "row_vs_columnar": {
                "table_rows": ENGINE_TABLE_ROWS,
                "queries": [
                    {
                        "sql": sql,
                        "row_ms": round(row_ms, 2),
                        "columnar_ms": round(col_ms, 2),
                        "speedup": round(speedup, 3),
                    }
                    for sql, row_ms, col_ms, speedup in self.engine_rows
                ],
                "overall_speedup": round(self.engine_speedup, 3),
                "floor": ENGINE_SPEEDUP_FLOOR,
                "target": ENGINE_SPEEDUP_TARGET,
                "streamed_end_to_end": (
                    None
                    if self.stream_engine_row is None
                    else {
                        "agents": self.stream_engine_row[0],
                        "row_ms": round(self.stream_engine_row[1], 2),
                        "columnar_ms": round(self.stream_engine_row[2], 2),
                        "ratio": round(self.stream_engine_row[3], 3),
                    }
                ),
            },
        }


def run_streaming_path(
    probes: list[Probe], db=None, engine: str | None = None
) -> tuple[int, float, dict]:
    """N uncoordinated agent threads, one shared system, no pre-batching."""
    system = AgentFirstDataSystem(
        db if db is not None else build_db(),
        config=SystemConfig(
            gateway_max_wait=STREAM_MAX_WAIT,
            gateway_max_batch=len(probes),
            engine=engine,
        ),
        workers=1,
    )
    rows = [0] * len(probes)
    barrier = threading.Barrier(len(probes) + 1)

    def agent_main(index: int, probe: Probe) -> None:
        # Identity lives on the session; the probe itself is bare SQL.
        session = system.session(agent_id=probe.agent_id)
        barrier.wait()
        response = session.submit(
            Probe(queries=probe.queries, brief=probe.brief)
        ).result(timeout=120.0)
        rows[index] = response.rows_processed

    threads = [
        threading.Thread(target=agent_main, args=(index, probe))
        for index, probe in enumerate(probes)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed_ms = (time.perf_counter() - started) * 1000.0
    stats = system.gateway.stats()
    system.gateway.close()
    return sum(rows), elapsed_ms, stats


def run_gateway_bench() -> GatewayBenchResult:
    result = GatewayBenchResult()
    for n_agents in AGENT_COUNTS:
        probes = swarm_probes(n_agents)

        # Path 1: per-probe submit, independent per-agent systems.
        serial_systems = [AgentFirstDataSystem(build_db(), workers=1) for _ in probes]
        started = time.perf_counter()
        serial_rows = sum(
            system.submit(probe).rows_processed
            for system, probe in zip(serial_systems, probes)
        )
        serial_ms = (time.perf_counter() - started) * 1000.0

        # Path 2: the sharing ceiling — one hand-assembled admission window.
        batch_system = AgentFirstDataSystem(build_db(), workers=1)
        started = time.perf_counter()
        batch_rows = sum(
            response.rows_processed
            for response in batch_system.submit_many(probes)
        )
        batch_ms = (time.perf_counter() - started) * 1000.0
        # Registry-backed efficiency gauges for the trajectory (last —
        # largest — swarm size wins): the sharing ceiling's cache economy.
        snap = batch_system.metrics()
        result.cache_metrics = {
            "swarm_size": n_agents,
            "subplan_cache_hit_ratio": snap.get(
                "repro_engine_subplan_cache_hit_ratio"
            ),
            "subplan_cache_hits": snap.get("repro_engine_subplan_cache_hits"),
            "subplan_cache_misses": snap.get("repro_engine_subplan_cache_misses"),
        }

        # Path 3: streaming admission from uncoordinated agent threads.
        stream_rows, stream_ms, stats = run_streaming_path(probes)

        ceiling = serial_rows - batch_rows
        recovered = (serial_rows - stream_rows) / ceiling if ceiling else 1.0
        if n_agents == 64:
            result.recovered_at_64 = recovered
        result.sharing_rows.append(
            (
                n_agents,
                serial_rows,
                batch_rows,
                stream_rows,
                recovered,
                serial_ms,
                batch_ms,
                stream_ms,
            )
        )
        result.window_rows.append(
            (
                n_agents,
                stats["windows_streamed"],
                stats["mean_window_size"],
                stats["mean_formation_ms"],
                stats["max_formation_ms"],
            )
        )

    # Engine dimension: row vs columnar on the scan-heavy corpus the
    # streamed comparison below serves (asserted on engine time alone).
    result.engine_rows = measure_engines(build_engine_db(), ENGINE_QUERIES)
    row_total = sum(row_ms for _, row_ms, _, _ in result.engine_rows)
    col_total = sum(col_ms for _, _, col_ms, _ in result.engine_rows)
    result.engine_speedup = row_total / col_total if col_total else 0.0

    # Streamed end-to-end on the same big table: distinct thresholds per
    # agent keep history/MQO from short-circuiting the engine work.
    engine_probes = [
        Probe(
            queries=(
                "SELECT COUNT(*), SUM(amount) FROM big"
                f" WHERE amount > {5 + 10 * agent}.0",
            ),
            agent_id=f"agent-{agent}",
        )
        for agent in range(STREAM_ENGINE_AGENTS)
    ]
    timings = {}
    for engine in ("row", "columnar"):
        _, timings[engine], _ = run_streaming_path(
            engine_probes, db=build_engine_db(), engine=engine
        )
    result.stream_engine_row = (
        STREAM_ENGINE_AGENTS,
        timings["row"],
        timings["columnar"],
        timings["row"] / timings["columnar"] if timings["columnar"] else 0.0,
    )
    return result


def write_json(result: GatewayBenchResult) -> str:
    """Append this run (keyed by git SHA + date) to the perf trajectory."""
    from bench_record import append_run

    return append_run(
        JSON_PATH_ENV,
        DEFAULT_JSON_PATH,
        result.to_json(),
        metrics=getattr(result, "cache_metrics", None),
    )


def test_gateway_streaming_admission(benchmark):
    result = benchmark.pedantic(run_gateway_bench, rounds=1, iterations=1)
    print()
    print(result.render())
    print(f"\nwrote {write_json(result)}")

    # The acceptance bar: 64 uncoordinated agents must recover >=80% of
    # the rows-saved sharing a hand-assembled single batch achieves.
    assert result.recovered_at_64 >= 0.8
    # The vectorized-executor acceptance bar (same floor as the
    # scheduler bench): >=2x on engine time, 5x target reported.
    assert result.engine_speedup >= ENGINE_SPEEDUP_FLOOR


if __name__ == "__main__":
    result = run_gateway_bench()
    print(result.render())
    print(f"\nwrote {write_json(result)}")
