"""Figure 2 — total vs. unique sub-expressions across 50 parallel attempts.

Paper shape: the number of distinct sub-plans of each size is a small
fraction (often <10-20%) of the total; scans (TS) dedupe hardest, larger
compositions are more distinct.
"""

from __future__ import annotations

from repro.harness import run_fig2

SEED = 0
N_TASKS = 16
ATTEMPTS = 50


def _run():
    return run_fig2(seed=SEED, n_tasks=N_TASKS, attempts_per_task=ATTEMPTS)


def test_fig2(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    proportions = {size: p for size, _, _, p in result.by_size}
    assert proportions[1] < 0.1, "small sub-plans are massively redundant"
    assert all(p < 0.35 for p in proportions.values())
    op_props = {code: p for code, _, _, p in result.by_operator}
    assert op_props["TS"] == min(op_props.values()), "scans dedupe hardest"
