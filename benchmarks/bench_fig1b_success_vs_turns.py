"""Figure 1b — Success vs. number of sequential turns.

Paper shape: success climbs with the turn budget, ≈35% at one turn to ≈55%
at seven, as exploration turns convert into grounding.
"""

from __future__ import annotations

from repro.harness import run_fig1b

SEED = 0
N_TASKS = 48


def _run():
    return run_fig1b(seed=SEED, n_tasks=N_TASKS, repetitions=2)


def test_fig1b(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    print(result.render())

    for series in result.series.values():
        assert series[7] > series[1] + 0.1, "turns must buy success"
        assert series[1] < 0.5, "blind single-turn attempts are weak"
