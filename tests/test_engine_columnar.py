"""Differential testing: the columnar engine vs. the row engine.

The columnar executor's contract is byte-identity — rows, row order,
columns, every stats counter, estimate errors, and raised errors must
match the row engine exactly, at every plan node. These tests run the
same plans through both engines and diff everything, over a corpus that
touches every ``PlanNode`` type, NULL-heavy columns, empty and
single-row tables, and alias-shadowed plans. A system-level sweep
(workers 1/8 × thread/process backends) checks the engine knob rides
the full scheduler/dispatch stack unchanged.
"""

from __future__ import annotations

from dataclasses import asdict

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.engine.columnar import (
    ENGINE_ENV_VAR,
    KERNEL_MEMO_STATS,
    ColumnarExecutor,
    clear_kernel_memo,
    make_executor,
    resolve_engine,
)
from repro.engine.executor import (
    ExecContext,
    Executor,
    SubplanCache,
    clear_expr_memo,
)
from repro.plan import logical


def build_db() -> Database:
    """Two tables with NULLs in every nullable column, plus an empty and
    a single-row table."""
    db = Database("columnar-diff")
    db.execute(
        "CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT, grp TEXT)"
    )
    db.execute("CREATE TABLE s (id INT, label TEXT)")
    db.execute("CREATE TABLE empty_t (id INT, val FLOAT)")
    db.execute("CREATE TABLE one_t (id INT, val FLOAT)")
    rows = []
    for i in range(300):
        name = None if i % 7 == 0 else f"name-{i % 13}"
        score = None if i % 5 == 0 else round((i * 7919 % 997) / 10.0, 1)
        grp = None if i % 11 == 0 else f"g{i % 4}"
        rows.append((i, name, score, grp))
    db.insert_rows("t", rows)
    db.insert_rows(
        "s", [(i % 9, None if i % 4 == 0 else f"l{i % 3}") for i in range(40)]
    )
    db.insert_rows("one_t", [(1, 2.5)])
    return db


@pytest.fixture(scope="module")
def diff_db() -> Database:
    return build_db()


#: One entry per plan-node type the planner can emit, plus NULL-heavy,
#: empty-table, and single-row coverage.
CORPUS = [
    # Scan / Project / Filter
    "SELECT id, name FROM t WHERE score > 50.0",
    "SELECT id FROM t WHERE name IS NULL",
    "SELECT id FROM t WHERE grp IS NOT NULL AND score <= 30.0",
    "SELECT -id, NOT (score > 50.0) FROM t WHERE id < 20",
    # expressions: arithmetic, concat, case, cast, functions, in, between
    "SELECT id + 1, score * 2.0, id % 7 FROM t WHERE id < 50",
    "SELECT name || '-' || grp FROM t WHERE id < 40",
    "SELECT CASE WHEN score > 70.0 THEN 'hi' WHEN score > 30.0 THEN 'mid' ELSE 'lo' END FROM t",
    "SELECT CAST(id AS TEXT), CAST(id AS FLOAT) FROM t WHERE id < 25",
    "SELECT LOWER(name), UPPER(grp), LENGTH(name) FROM t WHERE id < 30",
    "SELECT COALESCE(name, 'missing'), COALESCE(score, 0.0) FROM t WHERE id < 30",
    "SELECT id FROM t WHERE grp IN ('g1', 'g3')",
    "SELECT id FROM t WHERE score BETWEEN 20.0 AND 40.0",
    "SELECT id FROM t WHERE name LIKE 'name-1%'",
    # OneRow
    "SELECT 1, 'x'",
    # SubqueryScan (derived table)
    "SELECT q.id FROM (SELECT id FROM t WHERE score > 60.0) q WHERE q.id < 100",
    # HashJoin (inner + left)
    "SELECT t.id, s.label FROM t JOIN s ON t.id = s.id ORDER BY t.id, s.label",
    "SELECT t.id, s.label FROM t LEFT JOIN s ON t.id = s.id WHERE t.id < 30"
    " ORDER BY t.id, s.label",
    # NestedLoopJoin (non-equi condition)
    "SELECT t.id AS tid, s.id AS sid FROM t JOIN s ON t.id < s.id"
    " WHERE t.id < 8 ORDER BY tid, sid",
    "SELECT t.id AS tid, s.id AS sid FROM t LEFT JOIN s"
    " ON t.id < s.id AND s.label = 'l1' WHERE t.id < 6 ORDER BY tid, sid",
    # Aggregate: global, grouped, empty-input, distinct counts
    "SELECT COUNT(*), COUNT(score), SUM(score), AVG(score), MIN(name), MAX(score) FROM t",
    "SELECT grp, COUNT(*), SUM(score), AVG(score) FROM t GROUP BY grp ORDER BY grp",
    "SELECT COUNT(DISTINCT grp), COUNT(DISTINCT score) FROM t",
    "SELECT grp, MIN(score), MAX(name) FROM t WHERE id > 250 GROUP BY grp ORDER BY grp",
    # Sort / Limit / Distinct
    "SELECT id, score FROM t ORDER BY score DESC, id ASC LIMIT 17",
    "SELECT id FROM t ORDER BY name LIMIT 10 OFFSET 5",
    "SELECT DISTINCT grp FROM t ORDER BY grp",
    "SELECT DISTINCT grp, name FROM t WHERE id < 60 ORDER BY grp, name",
    # empty + single-row tables
    "SELECT COUNT(*), SUM(val), AVG(val), MIN(val), MAX(val) FROM empty_t",
    "SELECT id, val FROM empty_t WHERE val > 1.0 ORDER BY id LIMIT 3",
    "SELECT DISTINCT id FROM empty_t",
    "SELECT t.id FROM t JOIN empty_t e ON t.id = e.id",
    "SELECT id, val * 2.0 FROM one_t",
    "SELECT COUNT(*), AVG(val) FROM one_t",
    # subquery-bearing expressions (unvectorizable → row fallback)
    "SELECT id FROM t WHERE score > (SELECT AVG(score) FROM t) ORDER BY id LIMIT 12",
    "SELECT id FROM t WHERE id IN (SELECT id FROM s) ORDER BY id",
]

#: (sql, expected error fragment) — both engines must raise the same
#: error type with the same message.
ERROR_CORPUS = [
    "SELECT score + name FROM t",
    "SELECT id / (id - id) FROM t",
    "SELECT id % (id - id) FROM t",
    "SELECT -name FROM t WHERE name IS NOT NULL",
    "SELECT SUM(name) FROM t",
    "SELECT AVG(grp) FROM t",
]


def run_both(db: Database, sql: str, sample_rate: float = 1.0):
    plan = db.plan_select(sql)
    row_context = ExecContext(sample_rate=sample_rate, sample_seed=17)
    col_context = ExecContext(sample_rate=sample_rate, sample_seed=17)
    row_result = Executor(db.catalog, row_context).run(plan)
    col_result = ColumnarExecutor(db.catalog, col_context).run(plan)
    return row_context, row_result, col_context, col_result


def assert_identical(db: Database, sql: str, sample_rate: float = 1.0) -> None:
    row_context, row_result, col_context, col_result = run_both(
        db, sql, sample_rate
    )
    assert col_result.columns == row_result.columns, sql
    assert col_result.rows == row_result.rows, sql
    assert col_result.estimate_errors == row_result.estimate_errors, sql
    assert asdict(col_context.stats) == asdict(row_context.stats), sql


class TestDifferentialCorpus:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_exact(self, diff_db, sql):
        assert_identical(diff_db, sql)

    @pytest.mark.parametrize("sql", CORPUS)
    def test_sampled(self, diff_db, sql):
        """Sampled scans draw the same bernoulli sequence; sampled
        aggregates (scaled estimates) run through the row fallback."""
        assert_identical(diff_db, sql, sample_rate=0.5)

    @pytest.mark.parametrize("sql", ERROR_CORPUS)
    def test_error_parity(self, diff_db, sql):
        plan = diff_db.plan_select(sql)
        with pytest.raises(Exception) as row_err:
            Executor(diff_db.catalog, ExecContext()).run(plan)
        with pytest.raises(Exception) as col_err:
            ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        assert type(col_err.value) is type(row_err.value), sql
        assert str(col_err.value) == str(row_err.value), sql

    def test_index_scan_falls_back(self):
        """IndexScan leaves have no kernel; the row fallback serves them
        with identical stats. Fresh database: the index must not leak
        into the shared fixture's plans."""
        db = build_db()
        db.catalog.create_hash_index("t", "grp")
        sql = "SELECT id FROM t WHERE grp = 'g2' ORDER BY id"
        plan = db.plan_select(sql)
        assert any(isinstance(n, logical.IndexScan) for n in plan.walk())
        assert_identical(db, sql)

    def test_alias_shadowed_plans(self, diff_db):
        """Alias renaming keeps the strict fingerprint, so the renamed
        twin reuses the memoized kernels — and still matches the row
        engine byte-for-byte."""
        assert_identical(
            diff_db, "SELECT a.id, a.grp FROM t a WHERE a.score > 40.0"
        )
        KERNEL_MEMO_STATS.reset()
        assert_identical(
            diff_db, "SELECT b.id, b.grp FROM t b WHERE b.score > 40.0"
        )
        assert KERNEL_MEMO_STATS.builds == 0
        assert KERNEL_MEMO_STATS.hits > 0

    def test_view_scan(self, diff_db):
        """ViewScan nodes (maintenance-substituted leaves) execute
        identically, including the output-column permutation."""
        source = diff_db.plan_select("SELECT grp, COUNT(*) FROM t GROUP BY grp")
        view = logical.ViewScan(
            name="v-test",
            source_strict="deadbeef",
            build_id=1,
            columns=source.output,
            rows=(("g0", 4), ("g1", 3), (None, 2)),
            projection=(0, 1),
        )
        permuted = logical.ViewScan(
            name="v-perm",
            source_strict="deadbeef",
            build_id=2,
            columns=tuple(reversed(source.output)),
            rows=(("g0", 4), ("g1", 3)),
            projection=(1, 0),
        )
        for node in (view, permuted):
            row_context = ExecContext()
            col_context = ExecContext()
            row_result = Executor(diff_db.catalog, row_context).run(node)
            col_result = ColumnarExecutor(diff_db.catalog, col_context).run(node)
            assert col_result.rows == row_result.rows
            assert asdict(col_context.stats) == asdict(row_context.stats)


class TestEngineResolution:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        assert resolve_engine("row") == "row"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        assert resolve_engine(None) == "columnar"

    def test_default_is_row(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV_VAR, raising=False)
        assert resolve_engine(None) == "row"

    def test_auto_is_columnar(self):
        assert resolve_engine("auto") == "columnar"

    def test_unrecognized_is_row(self):
        assert resolve_engine("vectorwise") == "row"

    def test_factory(self, diff_db):
        assert isinstance(
            make_executor(diff_db.catalog, ExecContext(), "row"), Executor
        )
        assert isinstance(
            make_executor(diff_db.catalog, ExecContext(), "columnar"),
            ColumnarExecutor,
        )
        assert not isinstance(
            make_executor(diff_db.catalog, ExecContext(), "row"),
            ColumnarExecutor,
        )


class TestCrossEngineCache:
    """Both engines key the subplan cache identically, so a cache one
    engine populated serves the other — rows included."""

    SQL = (
        "SELECT t.grp, SUM(t.score) FROM t JOIN s ON t.id = s.id"
        " GROUP BY t.grp ORDER BY t.grp"
    )

    def _run(self, db, executor_cls, cache):
        context = ExecContext(cache=cache)
        plan = db.plan_select(self.SQL)
        result = executor_cls(db.catalog, context).run(plan)
        return context, result

    def test_columnar_populates_row_consumes(self, diff_db):
        cache = SubplanCache()
        _, col_result = self._run(diff_db, ColumnarExecutor, cache)
        row_context, row_result = self._run(diff_db, Executor, cache)
        assert row_result.rows == col_result.rows
        assert row_context.stats.cache_hits > 0
        assert row_context.stats.cache_misses == 0

    def test_row_populates_columnar_consumes(self, diff_db):
        cache = SubplanCache()
        _, row_result = self._run(diff_db, Executor, cache)
        col_context, col_result = self._run(diff_db, ColumnarExecutor, cache)
        assert col_result.rows == row_result.rows
        assert col_context.stats.cache_hits > 0
        assert col_context.stats.cache_misses == 0


class TestKernelMemo:
    def test_repeat_execution_hits_memo(self, diff_db):
        clear_expr_memo()  # also clears the kernel memo
        sql = "SELECT id, score FROM t WHERE score > 10.0 ORDER BY id LIMIT 5"
        plan = diff_db.plan_select(sql)
        ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        KERNEL_MEMO_STATS.reset()
        ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        assert KERNEL_MEMO_STATS.builds == 0
        assert KERNEL_MEMO_STATS.hits > 0
        assert KERNEL_MEMO_STATS.fallbacks == 0

    def test_subquery_nodes_are_unvectorized(self, diff_db):
        clear_expr_memo()
        sql = "SELECT id FROM t WHERE score > (SELECT AVG(score) FROM t)"
        plan = diff_db.plan_select(sql)
        KERNEL_MEMO_STATS.reset()
        ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        assert KERNEL_MEMO_STATS.unvectorized > 0
        assert KERNEL_MEMO_STATS.fallbacks == 0

    def test_clear_expr_memo_clears_kernels(self, diff_db):
        from repro.engine import columnar as columnar_module

        sql = "SELECT id FROM t WHERE id < 10"
        plan = diff_db.plan_select(sql)
        ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        with columnar_module._KERNEL_MEMO_LOCK:
            assert len(columnar_module._KERNEL_MEMO) > 0
        clear_expr_memo()
        with columnar_module._KERNEL_MEMO_LOCK:
            assert len(columnar_module._KERNEL_MEMO) == 0

    def test_kernel_memo_is_bounded(self, diff_db):
        from repro.engine import columnar as columnar_module

        clear_kernel_memo()
        for i in range(30):
            plan = diff_db.plan_select(f"SELECT id FROM t WHERE id > {i}")
            ColumnarExecutor(diff_db.catalog, ExecContext()).run(plan)
        with columnar_module._KERNEL_MEMO_LOCK:
            assert (
                len(columnar_module._KERNEL_MEMO)
                <= columnar_module._KERNEL_MEMO_MAX
            )


def system_db() -> Database:
    db = Database("columnar-system")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 3, "coffee" if i % 2 else "tea", float(i % 40))
            for i in range(600)
        ],
    )
    return db


def system_probes() -> list[Probe]:
    shared_join = (
        "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
        " ON s.id = x.store_id GROUP BY s.city ORDER BY s.city"
    )
    probes = [
        Probe(
            queries=(
                shared_join,
                f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + agent % 3}",
            ),
            brief=Brief(goal="compute the exact answer"),
            agent_id=f"agent-{agent}",
        )
        for agent in range(6)
    ]
    probes.append(Probe.sql("SELECT 1 / (id - id) FROM stores"))
    probes.append(
        Probe(
            queries=("SELECT AVG(amount) FROM sales",),
            brief=Brief(goal="explore the data roughly", accuracy=0.5),
            agent_id="sampler",
        )
    )
    return probes


def assert_same_responses(row_responses, col_responses):
    assert len(row_responses) == len(col_responses)
    for row, col in zip(row_responses, col_responses):
        assert [o.sql for o in row.outcomes] == [o.sql for o in col.outcomes]
        assert [o.status for o in row.outcomes] == [
            o.status for o in col.outcomes
        ]
        assert [o.reason for o in row.outcomes] == [
            o.reason for o in col.outcomes
        ]
        for row_outcome, col_outcome in zip(row.outcomes, col.outcomes):
            row_rows = row_outcome.result.rows if row_outcome.result else None
            col_rows = col_outcome.result.rows if col_outcome.result else None
            assert row_rows == col_rows
        assert row.steering == col.steering


class TestSystemDifferential:
    """The engine knob through the whole stack: scheduler admission,
    speculation, history, steering — byte-identical responses at any
    worker count on either dispatch backend."""

    @pytest.mark.parametrize("workers", [1, 8])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_batch_matches_row_engine(self, workers, backend):
        """Identical systems except for the engine knob: same batch, same
        workers, same backend — the responses must not differ at all."""
        probes = system_probes()
        row_config = SystemConfig(engine="row", dispatch_backend=backend)
        with AgentFirstDataSystem(
            system_db(), config=row_config, workers=workers
        ) as row_system:
            row_responses = row_system.submit_many(probes)
        col_config = SystemConfig(engine="columnar", dispatch_backend=backend)
        with AgentFirstDataSystem(
            system_db(), config=col_config, workers=workers
        ) as col_system:
            col_responses = col_system.submit_many(probes)
        assert_same_responses(row_responses, col_responses)

    def test_env_override_reaches_scheduler(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "columnar")
        system = AgentFirstDataSystem(system_db())
        response = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert response.outcomes[0].result.rows == [(600,)]
        assert isinstance(
            make_executor(system.db.catalog, ExecContext(), None),
            ColumnarExecutor,
        )
