"""Tests for the workload generators: BIRD-like pool, cross-backend tasks,
update sessions."""

from __future__ import annotations

import pytest

from repro.util.rng import RngStream
from repro.workloads.bird import DOMAINS, BirdTaskPool, build_domain_db
from repro.workloads.multibackend import build_cross_backend_tasks
from repro.workloads.updates import (
    fresh_accounts_manager,
    simulate_agent_update_session,
    simulate_human_update_session,
)


class TestDomainDatabases:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_domains_build_and_populate(self, domain):
        db = build_domain_db(domain, seed=1)
        assert len(db.table_names()) >= 3
        for table in db.table_names():
            assert db.catalog.table(table).num_rows > 0

    def test_deterministic_per_seed(self):
        a = build_domain_db("retail", seed=9)
        b = build_domain_db("retail", seed=9)
        assert a.execute("SELECT COUNT(*) FROM sales").rows == b.execute(
            "SELECT COUNT(*) FROM sales"
        ).rows

    def test_different_seeds_differ(self):
        a = build_domain_db("retail", seed=1)
        b = build_domain_db("retail", seed=2)
        assert (
            a.execute("SELECT SUM(amount) FROM sales").rows
            != b.execute("SELECT SUM(amount) FROM sales").rows
        )


class TestBirdTaskPool:
    def test_generates_requested_count(self):
        tasks = BirdTaskPool(seed=3).generate(24)
        assert len(tasks) == 24

    def test_difficulty_mix(self):
        tasks = BirdTaskPool(seed=3).generate(24)
        difficulties = {t.difficulty for t in tasks}
        assert difficulties == {"simple", "moderate", "challenging"}

    def test_gold_sql_executes_nonempty(self):
        for task in BirdTaskPool(seed=3).generate(24):
            result = task.db.execute(task.gold_sql)
            assert result.row_count > 0, task.gold_sql

    def test_gold_checks_itself(self):
        for task in BirdTaskPool(seed=3).generate(12):
            assert task.check(task.gold_sql)

    def test_check_rejects_wrong_sql(self):
        task = BirdTaskPool(seed=3).generate(4)[0]
        assert not task.check(f"SELECT COUNT(*) FROM {task.spec.fact_table} WHERE 1 = 0")
        assert not task.check("totally invalid sql !!!")

    def test_questions_mention_components(self):
        for task in BirdTaskPool(seed=3).generate(8):
            assert task.question.endswith("?")
            assert task.spec.fact_table in task.question

    def test_traps_present_in_pool(self):
        tasks = BirdTaskPool(seed=3).generate(36)
        trapped = [
            t for t in tasks if any(f.wrong_value is not None for f in t.spec.filters)
        ]
        assert len(trapped) > len(tasks) * 0.4

    def test_wrong_value_matches_nothing(self):
        tasks = BirdTaskPool(seed=3).generate(24)
        for task in tasks:
            for filter_spec in task.spec.filters:
                if filter_spec.wrong_value is None or filter_spec.op != "=":
                    continue
                literal = (
                    f"'{filter_spec.wrong_value}'"
                    if isinstance(filter_spec.wrong_value, str)
                    else str(filter_spec.wrong_value)
                )
                count = task.db.execute(
                    f"SELECT COUNT(*) FROM {filter_spec.table}"
                    f" WHERE {filter_spec.column} = {literal}"
                ).first_value()
                assert count == 0

    def test_distractors_exclude_task_tables(self):
        for task in BirdTaskPool(seed=3).generate(12):
            assert not set(task.distractor_tables) & set(task.spec.tables())

    def test_pool_determinism(self):
        a = BirdTaskPool(seed=5).generate(8)
        b = BirdTaskPool(seed=5).generate(8)
        assert [t.gold_sql for t in a] == [t.gold_sql for t in b]

    def test_component_count_scales_with_difficulty(self):
        tasks = BirdTaskPool(seed=3).generate(36)
        simple = [t.spec.component_count() for t in tasks if t.difficulty == "simple"]
        challenging = [
            t.spec.component_count() for t in tasks if t.difficulty == "challenging"
        ]
        assert sum(challenging) / len(challenging) > sum(simple) / len(simple)


class TestCrossBackendTasks:
    def test_builds_22_tasks(self):
        tasks = build_cross_backend_tasks(seed=1, n_tasks=22)
        assert len(tasks) == 22

    def test_two_backends_per_task(self):
        task = build_cross_backend_tasks(seed=1, n_tasks=1)[0]
        assert len(task.env.backend_names()) == 2

    def test_gold_value_reachable(self):
        """Recompute gold from raw backend contents; must match."""
        task = build_cross_backend_tasks(seed=1, n_tasks=3)[0]
        docs = task.env.backend(task.doc_backend).collection(task.collection)
        matching = {
            int(d[task.doc_key])
            for d in docs.find({task.filter_field: task.filter_value})
        }
        rel = task.env.backend(task.rel_backend)
        response = rel.query(
            f"SELECT {task.rel_key}, {task.event_field} FROM {task.table}"
        )
        rows = [r for r in response.rows if r[0] in matching]
        value = (
            round(sum(r[1] for r in rows), 2)
            if task.metric == "sum"
            else float(len(rows))
        )
        assert task.check(value)

    def test_wrong_filter_value_matches_nothing(self):
        task = build_cross_backend_tasks(seed=1, n_tasks=1)[0]
        docs = task.env.backend(task.doc_backend).collection(task.collection)
        assert docs.find({task.filter_field: task.filter_wrong_value}) == []

    def test_keys_are_type_mismatched(self):
        task = build_cross_backend_tasks(seed=1, n_tasks=1)[0]
        doc = task.env.backend(task.doc_backend).collection(task.collection).find(limit=1)[0]
        assert isinstance(doc[task.doc_key], str)
        rel = task.env.backend(task.rel_backend)
        row = rel.query(f"SELECT {task.rel_key} FROM {task.table} LIMIT 1").rows[0]
        assert isinstance(row[0], int)

    def test_check_rejects_wrong_and_none(self):
        task = build_cross_backend_tasks(seed=1, n_tasks=1)[0]
        assert not task.check(None)
        assert not task.check(task.gold_value + 1.0)
        assert task.check(task.gold_value)


class TestUpdateSessions:
    def test_agent_branches_and_rollbacks_dominate(self):
        manager = fresh_accounts_manager()
        human = simulate_human_update_session(manager, RngStream(2, "h"), n_tasks=15)
        manager = fresh_accounts_manager()
        agent = simulate_agent_update_session(manager, RngStream(2, "a"), n_tasks=15)
        assert agent.branches_created > human.branches_created * 5
        assert agent.rollbacks > human.rollbacks * 5

    def test_sessions_leave_no_stray_branches(self):
        manager = fresh_accounts_manager()
        simulate_agent_update_session(manager, RngStream(3, "a"), n_tasks=5)
        assert manager.live_branch_count() == 1  # only main survives

    def test_mainline_integrity_preserved(self):
        manager = fresh_accounts_manager()
        simulate_agent_update_session(manager, RngStream(4, "a"), n_tasks=5)
        count = manager.main.execute("SELECT COUNT(*) FROM accounts").first_value()
        assert count == 50

    def test_deterministic(self):
        a = simulate_agent_update_session(
            fresh_accounts_manager(), RngStream(5, "x"), n_tasks=5
        )
        b = simulate_agent_update_session(
            fresh_accounts_manager(), RngStream(5, "x"), n_tasks=5
        )
        assert (a.branches_created, a.rollbacks, a.updates) == (
            b.branches_created,
            b.rollbacks,
            b.updates,
        )
