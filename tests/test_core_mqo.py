"""Tests for the MQO batch executor and materialization advisor."""

from __future__ import annotations

import pytest

from repro.core.mqo import BatchExecutor, MaterializationAdvisor
from repro.db import Database


@pytest.fixture
def batch_db() -> Database:
    db = Database("batch")
    db.execute("CREATE TABLE logs (id INT, level TEXT, ms FLOAT)")
    rows = [
        (i, "error" if i % 7 == 0 else "info", float(i % 50)) for i in range(1200)
    ]
    db.insert_rows("logs", rows)
    return db


class TestBatchExecutor:
    def test_results_match_individual_execution(self, batch_db):
        queries = [
            "SELECT COUNT(*) FROM logs WHERE level = 'error'",
            "SELECT level, COUNT(*) FROM logs GROUP BY level",
            "SELECT COUNT(*) FROM logs WHERE level = 'error'",
        ]
        outcome = BatchExecutor(batch_db).execute_sql(queries)
        for sql, result in zip(queries, outcome.results):
            direct = batch_db.execute(sql)
            assert result.rows == direct.rows

    def test_duplicate_fraction_counts_redundancy(self, batch_db):
        queries = ["SELECT COUNT(*) FROM logs WHERE level = 'error'"] * 5
        outcome = BatchExecutor(batch_db).execute_sql(queries, measure_unshared=True)
        assert outcome.report.duplicate_fraction > 0.7
        assert outcome.report.cache_hits > 0

    def test_sharing_reduces_work(self, batch_db):
        queries = [
            "SELECT COUNT(*) FROM logs WHERE ms > 10",
            "SELECT SUM(ms) FROM logs WHERE ms > 10",
            "SELECT AVG(ms) FROM logs WHERE ms > 10",
        ]
        outcome = BatchExecutor(batch_db).execute_sql(queries, measure_unshared=True)
        assert (
            outcome.report.rows_processed_shared
            < outcome.report.rows_processed_unshared
        )
        assert outcome.report.work_saved_fraction > 0.3

    def test_disjoint_queries_share_nothing_much(self, batch_db):
        batch_db.execute("CREATE TABLE other (x INT)")
        batch_db.insert_rows("other", [(1,), (2,)])
        queries = [
            "SELECT COUNT(*) FROM logs",
            "SELECT COUNT(*) FROM other",
        ]
        outcome = BatchExecutor(batch_db).execute_sql(queries)
        assert outcome.report.cache_hits == 0

    def test_empty_batch(self, batch_db):
        outcome = BatchExecutor(batch_db).execute_sql([])
        assert outcome.results == []
        assert outcome.report.duplicate_fraction == 0.0


class TestMaterializationAdvisor:
    def test_recurring_subplan_suggested(self, batch_db):
        advisor = MaterializationAdvisor(min_occurrences=3)
        plan = batch_db.plan_select(
            "SELECT level, COUNT(*) FROM logs WHERE ms > 5 GROUP BY level"
        )
        for _ in range(3):
            advisor.observe(plan)
        suggestions = advisor.suggestions()
        assert suggestions
        assert all(count >= 3 for _, count, _ in suggestions)

    def test_below_threshold_not_suggested(self, batch_db):
        advisor = MaterializationAdvisor(min_occurrences=3)
        plan = batch_db.plan_select("SELECT COUNT(*) FROM logs")
        advisor.observe(plan)
        advisor.observe(plan)
        assert advisor.suggestions() == []

    def test_duplicate_subtrees_in_one_plan_counted_once(self, batch_db):
        advisor = MaterializationAdvisor(min_occurrences=2, min_size=1)
        plan = batch_db.plan_select(
            "SELECT l1.id FROM logs l1 JOIN logs l2 ON l1.id = l2.id"
        )
        advisor.observe(plan)
        # Both scans of `logs` canonicalise identically but count once per
        # plan observation, so one observation is not enough.
        top = [c for _, c, _ in advisor.suggestions()]
        assert all(count < 2 for count in top) or not top

    def test_alias_variants_aggregate(self, batch_db):
        advisor = MaterializationAdvisor(min_occurrences=2)
        a = batch_db.plan_select("SELECT COUNT(*) FROM logs WHERE ms > 5")
        b = batch_db.plan_select("SELECT COUNT(*) FROM logs x WHERE x.ms > 5")
        advisor.observe(a)
        advisor.observe(b)
        assert advisor.suggestions()
