"""Tests for the agent simulator: profiles, grounding, attempts, traces,
and the three agent modes."""

from __future__ import annotations

import pytest

from repro.agents import (
    GPT_4O_MINI_SIM,
    QWEN_CODER_SIM,
    AttemptGenerator,
    CrossBackendAgent,
    Grounding,
    HintSet,
    SequentialAgent,
    Supervisor,
    run_parallel_attempts,
)
from repro.agents.parallel import FieldAttempt
from repro.agents.trace import ACTIVITY_ORDER, Activity, AgentTrace
from repro.util.rng import RngStream
from repro.workloads.bird import BirdTaskPool
from repro.workloads.multibackend import build_cross_backend_tasks


@pytest.fixture(scope="module")
def tasks():
    return BirdTaskPool(seed=11).generate(12)


class TestModelProfiles:
    def test_knowledge_deterministic(self):
        assert GPT_4O_MINI_SIM.knows_format("t001") == GPT_4O_MINI_SIM.knows_format("t001")

    def test_common_random_numbers_nesting(self):
        """The stronger model knows a superset of the weaker model's tasks."""
        for i in range(200):
            task_id = f"t{i:03d}"
            if QWEN_CODER_SIM.knows_format(task_id):
                assert GPT_4O_MINI_SIM.knows_format(task_id)
            if QWEN_CODER_SIM.knows_schema(task_id):
                assert GPT_4O_MINI_SIM.knows_schema(task_id)

    def test_knowledge_rates_near_parameters(self):
        known = sum(GPT_4O_MINI_SIM.knows_format(f"x{i}") for i in range(2000)) / 2000
        assert abs(known - GPT_4O_MINI_SIM.format_knowledge) < 0.05


class TestGrounding:
    def test_coverage_progression(self, tasks):
        task = next(t for t in tasks if t.spec.join is not None)
        grounding = Grounding()
        assert grounding.coverage(task.spec) == 0.0
        for table in task.spec.tables():
            grounding.learn_table(table)
        mid = grounding.coverage(task.spec)
        assert 0 < mid < 1
        for f in task.spec.filters:
            grounding.learn_format(f.table, f.column)
        grounding.verify_join(*task.spec.join)
        assert grounding.coverage(task.spec) == 1.0

    def test_case_insensitive(self):
        grounding = Grounding()
        grounding.learn_table("Sales")
        assert grounding.table_known("SALES")

    def test_missing_tables(self, tasks):
        task = tasks[0]
        grounding = Grounding()
        assert grounding.missing_tables(task.spec) == task.spec.tables()


class TestAttemptGenerator:
    def test_fully_grounded_attempts_often_correct(self, tasks):
        correct = 0
        attempts = 0
        for task in tasks:
            generator = AttemptGenerator(task, GPT_4O_MINI_SIM)
            grounding = Grounding()
            for table in task.spec.tables():
                grounding.learn_table(table)
            for f in task.spec.filters:
                grounding.learn_format(f.table, f.column)
            if task.spec.join:
                grounding.verify_join(*task.spec.join)
            rng = RngStream(1, "gen", task.task_id)
            for k in range(10):
                attempts += 1
                attempt = generator.full_attempt(grounding, rng.child(k))
                if task.check(attempt.sql):
                    correct += 1
        assert correct / attempts > 0.6

    def test_mistakes_recorded_honestly(self, tasks):
        """An attempt with no recorded mistakes should be gold-correct."""
        task = tasks[0]
        generator = AttemptGenerator(task, GPT_4O_MINI_SIM)
        grounding = Grounding()
        for table in task.spec.tables():
            grounding.learn_table(table)
        for f in task.spec.filters:
            grounding.learn_format(f.table, f.column)
        if task.spec.join:
            grounding.verify_join(*task.spec.join)
        rng = RngStream(2, "gen2")
        clean = [
            a
            for a in (generator.full_attempt(grounding, rng.child(i)) for i in range(30))
            if not a.mistakes
        ]
        assert clean, "some attempts should be mistake-free"
        assert all(task.check(a.sql) for a in clean)

    def test_ungrounded_trap_task_systematically_wrong(self, tasks):
        trapped = [
            t
            for t in tasks
            if any(f.wrong_value is not None for f in t.spec.filters)
            and not GPT_4O_MINI_SIM.knows_format(t.task_id)
        ]
        if not trapped:
            pytest.skip("no trapped task in this pool slice")
        task = trapped[0]
        generator = AttemptGenerator(task, GPT_4O_MINI_SIM)
        grounding = Grounding()
        for table in task.spec.tables():
            grounding.learn_table(table)
        rng = RngStream(3, "gen3")
        results = [
            task.check(generator.full_attempt(grounding, rng.child(i)).sql)
            for i in range(15)
        ]
        assert not any(results), "ungrounded trap tasks cannot be solved by retries"

    def test_partial_probes_well_formed(self, tasks):
        task = next(t for t in tasks if t.spec.join is not None)
        generator = AttemptGenerator(task, GPT_4O_MINI_SIM)
        join_sql = generator.join_probe()
        assert join_sql is not None
        task.db.execute(join_sql)  # must parse and run
        for f in task.spec.filters:
            task.db.execute(generator.filter_probe(f, Grounding()))


class TestTrace:
    def test_record_and_counts(self):
        trace = AgentTrace(task_id="t", agent="a")
        trace.record(Activity.EXPLORING_TABLES, "q1")
        trace.record(Activity.FULL_ATTEMPT, "q2")
        trace.record(Activity.FULL_ATTEMPT, "q3")
        counts = trace.activity_counts()
        assert counts[Activity.EXPLORING_TABLES] == 1
        assert counts[Activity.FULL_ATTEMPT] == 2

    def test_normalized_positions(self):
        trace = AgentTrace(task_id="t", agent="a")
        for i in range(5):
            trace.record(Activity.PARTIAL_ATTEMPT, f"q{i}")
        positions = [p for p, _ in trace.normalized_positions()]
        assert positions[0] == 0.0
        assert positions[-1] == 1.0

    def test_single_event_position(self):
        trace = AgentTrace(task_id="t", agent="a")
        trace.record(Activity.FULL_ATTEMPT, "q")
        assert trace.normalized_positions() == [(0.0, Activity.FULL_ATTEMPT)]


class TestSequentialAgent:
    def test_run_is_deterministic(self, tasks):
        task = tasks[0]
        outcome_a = SequentialAgent(task, GPT_4O_MINI_SIM, RngStream(7, "s")).run(5)
        outcome_b = SequentialAgent(task, GPT_4O_MINI_SIM, RngStream(7, "s")).run(5)
        assert outcome_a.success == outcome_b.success
        assert [e.request for e in outcome_a.trace.events] == [
            e.request for e in outcome_b.trace.events
        ]

    def test_always_produces_final_attempt(self, tasks):
        for task in tasks[:6]:
            outcome = SequentialAgent(task, GPT_4O_MINI_SIM, RngStream(8, task.task_id)).run(3)
            assert outcome.final_sql is not None

    def test_trace_uses_taxonomy(self, tasks):
        outcome = SequentialAgent(tasks[0], GPT_4O_MINI_SIM, RngStream(9, "s")).run(7)
        assert all(e.activity in ACTIVITY_ORDER for e in outcome.trace.events)

    def test_more_turns_do_not_hurt_much(self, tasks):
        """Aggregate success with budget 7 should beat budget 1."""
        short = long = 0
        for rep in range(3):
            for task in tasks:
                short += SequentialAgent(
                    task, GPT_4O_MINI_SIM, RngStream(rep, "cmp", task.task_id, 1)
                ).run(1).success
                long += SequentialAgent(
                    task, GPT_4O_MINI_SIM, RngStream(rep, "cmp", task.task_id, 7)
                ).run(7).success
        assert long > short


class TestParallelAndSupervisor:
    def test_supervisor_majority(self):
        attempts = [
            FieldAttempt("q1", True, "sig_a", 3),
            FieldAttempt("q2", True, "sig_a", 3),
            FieldAttempt("q3", True, "sig_b", 3),
        ]
        assert Supervisor().pick(attempts) == "sig_a"

    def test_supervisor_downweights_empty(self):
        attempts = [
            FieldAttempt("q1", True, "empty_sig", 0),
            FieldAttempt("q2", True, "empty_sig", 0),
            FieldAttempt("q3", True, "real_sig", 4),
        ]
        assert Supervisor().pick(attempts) == "real_sig"

    def test_supervisor_all_errors_returns_none(self):
        attempts = [FieldAttempt("q", False, None, 0)]
        assert Supervisor().pick(attempts) is None

    def test_parallel_run_shapes(self, tasks):
        outcome = run_parallel_attempts(tasks[0], GPT_4O_MINI_SIM, 10, seed=3)
        assert len(outcome.attempts) == 10
        assert isinstance(outcome.success, bool)

    def test_success_at_prefix_monotone_data(self, tasks):
        supervisor = Supervisor()
        outcome = run_parallel_attempts(tasks[0], GPT_4O_MINI_SIM, 20, seed=3)
        # success_at uses only the first k attempts.
        values = [outcome.success_at(k, supervisor, tasks[0]) for k in (1, 5, 20)]
        assert all(isinstance(v, bool) for v in values)

    def test_deterministic_per_seed(self, tasks):
        a = run_parallel_attempts(tasks[1], QWEN_CODER_SIM, 8, seed=5)
        b = run_parallel_attempts(tasks[1], QWEN_CODER_SIM, 8, seed=5)
        assert [x.sql for x in a.attempts] == [x.sql for x in b.attempts]


class TestCrossBackendAgent:
    def test_agent_completes_and_records(self):
        task = build_cross_backend_tasks(seed=2, n_tasks=1)[0]
        outcome = CrossBackendAgent(
            task, GPT_4O_MINI_SIM, RngStream(1, "x")
        ).run(max_steps=24)
        assert len(outcome.trace) > 0
        assert outcome.answer is not None

    def test_hints_reduce_trace_length(self):
        lengths_without = []
        lengths_with = []
        for seed in range(4):
            for task in build_cross_backend_tasks(seed=6, n_tasks=6):
                without = CrossBackendAgent(
                    task, GPT_4O_MINI_SIM, RngStream(seed, "nh", task.task_id)
                ).run()
                withh = CrossBackendAgent(
                    task,
                    GPT_4O_MINI_SIM,
                    RngStream(seed, "wh", task.task_id),
                    hints=HintSet(),
                ).run()
                lengths_without.append(len(without.trace))
                lengths_with.append(len(withh.trace))
        assert sum(lengths_with) < sum(lengths_without)

    def test_key_type_matters(self):
        """Without learning the key-type mismatch, the join yields nothing."""
        task = build_cross_backend_tasks(seed=2, n_tasks=1)[0]
        agent = CrossBackendAgent(task, GPT_4O_MINI_SIM, RngStream(1, "kt"))
        agent.grounding.knows_collection = True
        agent.grounding.knows_table = True
        agent.grounding.knows_doc_fields = True
        agent.grounding.knows_segment_format = True
        agent.grounding.knows_key_type = False
        agent._full_attempt()
        assert agent._answer == 0.0
        agent.grounding.knows_key_type = True
        agent._full_attempt()
        assert task.check(agent._answer)
