"""Shared fixtures: small populated databases used across test modules."""

from __future__ import annotations

import pytest

from repro.db import Database


@pytest.fixture
def sales_db() -> Database:
    """A small two-table sales database with deterministic contents."""
    db = Database("sales")
    db.execute(
        "CREATE TABLE stores ("
        "  id INT PRIMARY KEY, city TEXT, state TEXT, opened INT)"
    )
    db.execute(
        "CREATE TABLE sales ("
        "  id INT PRIMARY KEY, store_id INT, product TEXT,"
        "  amount FLOAT, year INT)"
    )
    db.execute(
        "INSERT INTO stores VALUES "
        "(1,'Berkeley','CA',2001),(2,'Oakland','CA',2005),"
        "(3,'Seattle','WA',2010),(4,'Austin','TX',2015),"
        "(5,'Portland','OR',2012)"
    )
    db.execute(
        "INSERT INTO sales VALUES "
        "(1,1,'coffee',120.5,2023),(2,1,'tea',30.0,2023),"
        "(3,2,'coffee',80.0,2023),(4,3,'coffee',200.0,2023),"
        "(5,3,'tea',55.5,2024),(6,4,'coffee',50.25,2024),"
        "(7,1,'coffee',99.0,2024),(8,2,'tea',20.0,2024),"
        "(9,5,'coffee',10.0,2024),(10,5,'pastry',5.0,2023)"
    )
    return db


@pytest.fixture
def empty_db() -> Database:
    return Database("empty")
