"""Tests for the storage substrate: types, schema, tables, catalog, stats,
indexes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, ExecutionError
from repro.storage import (
    Catalog,
    Column,
    DataType,
    Table,
    TableSchema,
    coerce_value,
    compute_table_stats,
    infer_type,
)
from repro.storage.table import CHUNK_SIZE
from repro.storage.types import compare_values


def make_schema(name: str = "t") -> TableSchema:
    return TableSchema(
        name,
        (
            Column("id", DataType.INTEGER, nullable=False, primary_key=True),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ),
    )


class TestTypes:
    def test_parse_synonyms(self):
        assert DataType.parse("varchar") is DataType.TEXT
        assert DataType.parse("BIGINT") is DataType.INTEGER
        assert DataType.parse("double") is DataType.FLOAT
        assert DataType.parse("bool") is DataType.BOOLEAN

    def test_parse_unknown_raises(self):
        with pytest.raises(ExecutionError):
            DataType.parse("blob")

    def test_coerce_int_widens_to_float(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0
        assert isinstance(coerce_value(3, DataType.FLOAT), float)

    def test_coerce_lossy_float_to_int_raises(self):
        with pytest.raises(ExecutionError):
            coerce_value(3.5, DataType.INTEGER)

    def test_coerce_exact_float_to_int(self):
        assert coerce_value(3.0, DataType.INTEGER) == 3

    def test_coerce_null_passes_all_types(self):
        for data_type in DataType:
            assert coerce_value(None, data_type) is None

    def test_coerce_string_to_number(self):
        assert coerce_value("42", DataType.INTEGER) == 42
        with pytest.raises(ExecutionError):
            coerce_value("4x", DataType.INTEGER)

    def test_coerce_boolean(self):
        assert coerce_value("true", DataType.BOOLEAN) is True
        assert coerce_value(1, DataType.BOOLEAN) is True
        with pytest.raises(ExecutionError):
            coerce_value(7, DataType.BOOLEAN)

    def test_infer_type(self):
        assert infer_type(1) is DataType.INTEGER
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type(1.5) is DataType.FLOAT
        assert infer_type("x") is DataType.TEXT
        assert infer_type(None) is None

    def test_compare_values_null(self):
        assert compare_values(None, 1) is None
        assert compare_values(1, None) is None

    def test_compare_values_mixed_numeric(self):
        assert compare_values(1, 1.5) == -1
        assert compare_values(2.0, 2) == 0

    def test_compare_values_cross_type_raises(self):
        with pytest.raises(ExecutionError):
            compare_values("a", 1)


class TestSchema:
    def test_duplicate_column_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", (Column("a", DataType.TEXT), Column("A", DataType.TEXT)))

    def test_position_lookup_case_insensitive(self):
        schema = make_schema()
        assert schema.position_of("NAME") == 1

    def test_missing_column_raises(self):
        with pytest.raises(CatalogError):
            make_schema().position_of("missing")

    def test_primary_key_positions(self):
        assert make_schema().primary_key_positions() == [0]

    def test_fingerprint_payload_changes_with_schema(self):
        a = make_schema()
        b = TableSchema("t", a.columns + (Column("extra", DataType.TEXT),))
        assert a.fingerprint_payload() != b.fingerprint_payload()


class TestTable:
    def test_insert_and_scan(self):
        table = Table(make_schema())
        table.insert((1, "a", 0.5))
        table.insert((2, "b", None))
        assert table.rows() == [(1, "a", 0.5), (2, "b", None)]

    def test_not_null_enforced(self):
        table = Table(make_schema())
        with pytest.raises(ExecutionError):
            table.insert((None, "a", 1.0))

    def test_arity_enforced(self):
        table = Table(make_schema())
        with pytest.raises(ExecutionError):
            table.insert((1, "a"))

    def test_update_and_get(self):
        table = Table(make_schema())
        row_id = table.insert((1, "a", 0.5))
        table.update(row_id, (1, "z", 9.0))
        assert table.get(row_id) == (1, "z", 9.0)

    def test_delete_removes_row(self):
        table = Table(make_schema())
        first = table.insert((1, "a", 0.5))
        table.insert((2, "b", 1.5))
        table.delete(first)
        assert table.rows() == [(2, "b", 1.5)]
        with pytest.raises(ExecutionError):
            table.get(first)

    def test_row_ids_stable_and_not_reused(self):
        table = Table(make_schema())
        first = table.insert((1, "a", None))
        table.delete(first)
        second = table.insert((2, "b", None))
        assert second > first

    def test_bulk_insert_chunking(self):
        table = Table(make_schema())
        table.insert_many((i, f"n{i}", float(i)) for i in range(CHUNK_SIZE * 2 + 10))
        assert table.num_rows == CHUNK_SIZE * 2 + 10
        assert table.num_chunks == 3

    def test_snapshot_shares_storage(self):
        table = Table(make_schema())
        table.insert_many((i, "x", None) for i in range(10))
        snap = table.snapshot()
        clone = Table.from_snapshot(make_schema(), snap, table.next_row_id)
        table.update(0, (0, "changed", None))
        # The clone still sees the pre-update value: chunks are immutable.
        assert clone.get(0) == (0, "x", None)
        assert table.get(0) == (0, "changed", None)

    def test_data_version_bumps(self):
        table = Table(make_schema())
        v0 = table.data_version
        table.insert((1, "a", None))
        assert table.data_version > v0

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=60, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_delete_everything_property(self, values):
        table = Table(make_schema())
        ids = [table.insert((v, str(v), None)) for v in values]
        for row_id in ids:
            table.delete(row_id)
        assert table.num_rows == 0


class TestCatalog:
    def test_create_and_lookup(self):
        catalog = Catalog()
        catalog.create_table(make_schema("users"))
        assert catalog.has_table("USERS")
        assert catalog.table("users").schema.name == "users"

    def test_duplicate_create_rejected(self):
        catalog = Catalog()
        catalog.create_table(make_schema("t"))
        with pytest.raises(CatalogError):
            catalog.create_table(make_schema("T"))

    def test_drop_missing_raises(self):
        with pytest.raises(CatalogError):
            Catalog().drop_table("ghost")

    def test_schema_version_bumps_on_ddl(self):
        catalog = Catalog()
        v0 = catalog.schema_version
        catalog.create_table(make_schema("t"))
        v1 = catalog.schema_version
        catalog.drop_table("t")
        assert v0 < v1 < catalog.schema_version

    def test_hash_index_maintained_on_dml(self):
        catalog = Catalog()
        catalog.create_table(make_schema("t"))
        catalog.insert_rows("t", [(1, "a", None), (2, "b", None)])
        index = catalog.create_hash_index("t", "name")
        assert index.lookup("a") != set()
        (row_id,) = index.lookup("a")
        catalog.update_row("t", row_id, (1, "z", None))
        assert index.lookup("a") == set()
        assert index.lookup("z") == {row_id}
        catalog.delete_row("t", row_id)
        assert index.lookup("z") == set()

    def test_sorted_index_range(self):
        catalog = Catalog()
        catalog.create_table(make_schema("t"))
        catalog.insert_rows("t", [(i, "x", float(i)) for i in range(10)])
        index = catalog.create_sorted_index("t", "id")
        ids = index.lookup_range(3, 6)
        values = [catalog.table("t").get(r)[0] for r in ids]
        assert values == [3, 4, 5, 6]

    def test_stats_cached_until_change(self):
        catalog = Catalog()
        catalog.create_table(make_schema("t"))
        catalog.insert_rows("t", [(1, "a", 1.0)])
        stats1 = catalog.stats("t")
        assert catalog.stats("t") is stats1
        catalog.insert_rows("t", [(2, "b", 2.0)])
        assert catalog.stats("t") is not stats1


class TestIndexWritePathMaintenance:
    """Index contents under the full write path: inserts, updates, deletes
    — lookup / lookup_range / distinct_keys must track the table exactly.
    Previously only exercised indirectly through query execution."""

    def populated(self) -> Catalog:
        catalog = Catalog()
        catalog.create_table(make_schema("t"))
        catalog.insert_rows(
            "t", [(i, ("a", "b", "c")[i % 3], float(i)) for i in range(12)]
        )
        return catalog

    def lookup_matches_scan(self, catalog: Catalog, column: str, value) -> None:
        index = catalog.hash_index("t", column) or catalog.auxiliary_hash_index(
            "t", column
        )
        table = catalog.table("t")
        position = table.schema.position_of(column)
        expected = {
            row_id for row_id, row in table.scan_with_ids() if row[position] == value
        }
        assert index.lookup(value) == expected

    def test_hash_lookup_consistent_across_mixed_dml(self):
        catalog = self.populated()
        catalog.create_hash_index("t", "name")
        catalog.insert_rows("t", [(100, "a", 1.5), (101, None, 2.5)])
        for value in ("a", "b", "c"):
            self.lookup_matches_scan(catalog, "name", value)
        # Update moves a row between buckets; NULL leaves the index.
        moved = min(catalog.hash_index("t", "name").lookup("a"))
        catalog.update_row("t", moved, (999, "c", 0.0))
        self.lookup_matches_scan(catalog, "name", "a")
        self.lookup_matches_scan(catalog, "name", "c")
        catalog.update_row("t", moved, (999, None, 0.0))
        self.lookup_matches_scan(catalog, "name", "c")
        assert moved not in catalog.hash_index("t", "name").lookup("c")
        # Deletes shrink buckets all the way to removal.
        for row_id in sorted(catalog.hash_index("t", "name").lookup("b")):
            catalog.delete_row("t", row_id)
        assert catalog.hash_index("t", "name").lookup("b") == set()

    def test_distinct_keys_after_deletions(self):
        catalog = self.populated()
        index = catalog.create_hash_index("t", "name")
        assert index.distinct_keys == 3
        for row_id in sorted(index.lookup("c")):
            catalog.delete_row("t", row_id)
        assert index.distinct_keys == 2  # emptied bucket is dropped
        assert len(index) == catalog.table("t").num_rows

    def test_sorted_range_consistent_across_mixed_dml(self):
        catalog = self.populated()
        index = catalog.create_sorted_index("t", "score")
        catalog.insert_rows("t", [(200, "z", 4.5), (201, "z", None)])
        catalog.delete_row("t", min(index.lookup(3.0)))
        (victim,) = index.lookup(5.0)
        catalog.update_row("t", victim, (5, "z", 50.0))
        table = catalog.table("t")
        position = table.schema.position_of("score")
        populated_rows = [
            (row_id, row)
            for row_id, row in table.scan_with_ids()
            if row[position] is not None
        ]
        expected = [
            row_id
            for row_id, row in sorted(
                populated_rows, key=lambda pair: (pair[1][position], pair[0])
            )
            if 2.0 <= row[position] <= 50.0
        ]
        assert index.lookup_range(2.0, 50.0) == expected
        assert len(index) == sum(
            1 for row in table.scan() if row[position] is not None
        )

    def test_auxiliary_indexes_maintained_like_planner_ones(self):
        catalog = self.populated()
        catalog.create_auxiliary_hash_index("t", "name")
        catalog.create_auxiliary_sorted_index("t", "score")
        catalog.insert_rows("t", [(300, "a", 30.0)])
        self.lookup_matches_scan(catalog, "name", "a")
        sorted_index = catalog.auxiliary_sorted_index("t", "score")
        assert 300 in {
            catalog.table("t").get(r)[0]
            for r in sorted_index.lookup_range(30.0, 30.0)
        }
        row_id = min(catalog.auxiliary_hash_index("t", "name").lookup("a"))
        catalog.delete_row("t", row_id)
        self.lookup_matches_scan(catalog, "name", "a")
        # Catalog-mediated DML keeps auxiliary entries fresh...
        assert catalog.auxiliary_hash_index("t", "name") is not None
        # ...while direct table mutation marks them stale (refused).
        catalog.table("t").insert((400, "a", 40.0))
        assert catalog.auxiliary_hash_index("t", "name") is None
        assert catalog.auxiliary_sorted_index("t", "score") is None

    def test_catalog_dml_never_launders_a_stale_auxiliary_index(self):
        """An entry stale from a catalog-bypassing write is permanently
        missing rows — a later catalog-mediated write (which maintains
        only its own rows) must not re-stamp it fresh."""
        catalog = self.populated()
        catalog.create_auxiliary_hash_index("t", "name")
        catalog.table("t").insert((500, "a", 5.0))  # bypasses index upkeep
        assert catalog.auxiliary_hash_index("t", "name") is None
        catalog.insert_rows("t", [(501, "a", 6.0)])  # maintained write
        assert catalog.auxiliary_hash_index("t", "name") is None  # still stale
        # A rebuild (replace_table path) restores freshness from scratch.
        catalog.replace_table(catalog.table("t"))
        index = catalog.auxiliary_hash_index("t", "name")
        assert index is not None
        self.lookup_matches_scan(catalog, "name", "a")

    def test_write_racing_an_auxiliary_build_leaves_the_entry_stale(self):
        """The build stamps the data_version observed *before* its scan: a
        write landing mid-build leaves the (possibly incomplete) index
        detectably stale instead of laundered fresh."""
        catalog = self.populated()
        table = catalog.table("t")
        original = table.scan_with_ids

        def racing_scan():
            raced = False
            for item in original():
                if not raced:
                    table.insert((600, "a", 6.0))  # concurrent writer
                    raced = True
                yield item

        table.scan_with_ids = racing_scan  # type: ignore[method-assign]
        try:
            catalog.create_auxiliary_hash_index("t", "name")
        finally:
            del table.scan_with_ids
        assert catalog.auxiliary_hash_index("t", "name") is None

    def test_auxiliary_registry_versioning_and_snapshot_round_trip(self):
        catalog = self.populated()
        before = catalog.version()
        catalog.create_auxiliary_hash_index("t", "name")
        assert catalog.version() != before
        # ...but building an index never moves the *data* version views
        # are stamped with.
        assert catalog.data_version_tuple() == before[:-1]
        with pytest.raises(CatalogError):
            catalog.create_auxiliary_hash_index("t", "name")
        restored = Catalog.from_snapshot(catalog.snapshot())
        assert restored.auxiliary_hash_index("t", "name") is not None
        assert restored.auxiliary_hash_index("t", "name").lookup(
            "a"
        ) == catalog.auxiliary_hash_index("t", "name").lookup("a")
        # Planner-facing lookups never see auxiliary entries.
        assert catalog.hash_index("t", "name") is None
        assert catalog.lookup_hash_index("t", "name") is not None
        catalog.drop_table("t")
        assert catalog.auxiliary_index_keys() == []


class TestStatistics:
    def make_table(self) -> Table:
        table = Table(make_schema())
        rows = [(i, "ca" if i % 3 == 0 else "wa", float(i)) for i in range(30)]
        rows.append((100, None, None))
        table.insert_many(rows)
        return table

    def test_basic_counts(self):
        stats = compute_table_stats(self.make_table())
        name = stats.column("name")
        assert name.row_count == 31
        assert name.null_count == 1
        assert name.distinct_count == 2

    def test_min_max(self):
        stats = compute_table_stats(self.make_table())
        ids = stats.column("id")
        assert ids.min_value == 0
        assert ids.max_value == 100

    def test_most_common_values(self):
        stats = compute_table_stats(self.make_table())
        top_value, top_count = stats.column("name").most_common[0]
        assert top_value == "wa"
        assert top_count == 20

    def test_selectivity_equals_mcv(self):
        stats = compute_table_stats(self.make_table())
        name = stats.column("name")
        assert name.selectivity_equals("wa") == pytest.approx(20 / 31)

    def test_selectivity_equals_unseen(self):
        stats = compute_table_stats(self.make_table())
        assert 0 < stats.column("name").selectivity_equals("zz") <= 1

    def test_selectivity_range(self):
        stats = compute_table_stats(self.make_table())
        ids = stats.column("id")
        assert ids.selectivity_range(0, 50) == pytest.approx(0.5)
        assert ids.selectivity_range(None, None) == 1.0

    def test_histogram_buckets_sum(self):
        stats = compute_table_stats(self.make_table())
        score = stats.column("score")
        assert sum(score.histogram) == 30  # one NULL excluded

    def test_empty_table(self):
        stats = compute_table_stats(Table(make_schema()))
        column = stats.column("id")
        assert column.row_count == 0
        assert column.selectivity_equals(1) == 0.0
