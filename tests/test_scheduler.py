"""Differential and stress tests for the cross-agent probe scheduler.

The scheduler's contract has two halves:

* **semantics** — ``submit_many([p1..pn])`` returns byte-identical
  per-query rows and statuses to ``n`` serial ``submit`` calls on an
  identically-fresh system;
* **work** — the batch processes strictly fewer rows than the same probes
  served by independent per-agent systems whenever they overlap.

Plus: the shared :class:`SubplanCache` must keep consistent hit/miss
counters while many batches (and threads) hammer it.
"""

from __future__ import annotations

import threading

import pytest

from repro.agents.parallel import run_parallel_attempts
from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.engine.executor import SubplanCache


def build_db() -> Database:
    db = Database("sched")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 3, "coffee" if i % 2 else "tea", float(i % 40))
            for i in range(900)
        ],
    )
    return db


SHARED_JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)


def overlapping_probes(n: int) -> list[Probe]:
    """n agents; every probe shares a join, half share a filter query."""
    probes = []
    for agent in range(n):
        probes.append(
            Probe(
                queries=(
                    SHARED_JOIN,
                    f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + agent % 2}",
                ),
                brief=Brief(goal="compute the exact answer"),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


def assert_same_outcomes(serial_responses, batch_responses):
    assert len(serial_responses) == len(batch_responses)
    for serial, batch in zip(serial_responses, batch_responses):
        assert serial.turn == batch.turn
        assert [o.sql for o in serial.outcomes] == [o.sql for o in batch.outcomes]
        assert [o.status for o in serial.outcomes] == [
            o.status for o in batch.outcomes
        ]
        for serial_outcome, batch_outcome in zip(serial.outcomes, batch.outcomes):
            serial_rows = (
                serial_outcome.result.rows if serial_outcome.result else None
            )
            batch_rows = batch_outcome.result.rows if batch_outcome.result else None
            assert serial_rows == batch_rows
            serial_cols = (
                serial_outcome.result.columns if serial_outcome.result else None
            )
            batch_cols = (
                batch_outcome.result.columns if batch_outcome.result else None
            )
            assert serial_cols == batch_cols


class TestDifferentialEquivalence:
    def test_batch_matches_serial_overlapping(self):
        probes = overlapping_probes(8)
        serial = [AgentFirstDataSystem(build_db())]  # one fresh system
        serial_responses = [serial[0].submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    def test_batch_matches_serial_disjoint(self):
        probes = [
            Probe.sql(f"SELECT COUNT(*) FROM sales WHERE id < {100 * (i + 1)}")
            for i in range(5)
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    def test_batch_matches_serial_with_errors_and_pruning(self):
        probes = [
            Probe.sql("SELECT * FROM ghost_table"),
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales",
                    "SELECT COUNT(*) FROM stores",
                ),
                brief=Brief(goal="exact answer", complete_k_of_n=1),
            ),
            Probe.sql("SELECT COUNT(*) FROM sales"),
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    def test_batch_matches_serial_with_termination(self):
        def stop_after_first(results):
            return any(r.rows for r in results)

        probes = [
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
                    "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
                    "SELECT COUNT(*) FROM stores",
                ),
                termination=stop_after_first,
                agent_id=f"agent-{i}",
            )
            for i in range(3)
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    def test_pull_forward_preserves_serial_history_attribution(self):
        """The round-robin hazard case: a duplicate appears *later* in an
        earlier-admitted probe. Serial order (not dispatch order) must
        decide who executes and who answers from history."""
        duplicate = "SELECT COUNT(*) FROM sales WHERE product = 'coffee'"
        first = Probe(
            queries=("SELECT COUNT(*) FROM stores", duplicate),
            # Make the stores query run first within the probe.
            brief=Brief(priorities={0: 5.0, 1: 1.0}),
            agent_id="alice",
        )
        second = Probe(queries=(duplicate,), agent_id="bob")

        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in [first, second]]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(
            [first, second]
        )
        assert_same_outcomes(serial_responses, batch_responses)
        # Alice (admitted first) executed; bob reused her answer.
        assert batch_responses[0].outcomes[1].status == "ok"
        assert batch_responses[1].outcomes[0].status == "from_history"
        assert "alice" in batch_responses[1].outcomes[0].reason

    def test_batch_matches_serial_sampled_exploration(self):
        """Approximate (sampled) queries draw seed-dependent rows; the
        batch must return the same draws as serial submission even when
        probes share sampled subtrees."""
        probes = [
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales WHERE amount > 5.0",
                    "SELECT product FROM sales WHERE amount > 5.0",
                ),
                # An explicit accuracy contract forces sampled execution
                # (the queries are expensive enough to qualify).
                brief=Brief(accuracy=0.3),
                agent_id=f"explorer-{i}",
            )
            for i in range(4)
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert any(
            o.status == "approximate"
            for r in serial_responses
            for o in r.outcomes
        )
        assert_same_outcomes(serial_responses, batch_responses)

    def test_batch_matches_serial_with_mqo_disabled(self):
        """With MQO off there is no cache anywhere: the batch must not
        smuggle sharing back in (ablation baselines depend on it)."""
        probes = overlapping_probes(4)
        config = SystemConfig(enable_mqo=False)
        serial_system = AgentFirstDataSystem(build_db(), config=config)
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_system = AgentFirstDataSystem(build_db(), config=config)
        batch_responses = batch_system.submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)
        # Work must match serial exactly: no cache means no batch sharing
        # (history reuse of identical queries still applies to both).
        assert sum(r.rows_processed for r in batch_responses) == sum(
            r.rows_processed for r in serial_responses
        )
        report = batch_responses[0].sharing
        assert report.cache_hits == 0
        assert report.cache_misses == 0
        # Cross-agent hints must not claim sharing that never happened.
        assert not any(
            "shared batch-wide" in hint
            for r in batch_responses
            for hint in r.steering
        )

    def test_stateful_termination_criterion_called_identically(self):
        """Criteria are user code and may count calls or watch the clock:
        the batch must invoke them exactly as often as serial submission
        (after executed queries only, never after firing)."""

        class Counting:
            def __init__(self):
                self.calls = 0

            def __call__(self, results):
                self.calls += 1
                return self.calls >= 2

        def make_probes(criterion_a, criterion_b):
            return [
                Probe(
                    queries=(
                        "SELECT COUNT(*) FROM sales",
                        "SELECT * FROM ghost_table",
                        "SELECT COUNT(*) FROM stores",
                        "SELECT id FROM stores",
                    ),
                    brief=Brief(priorities={0: 5.0, 1: 4.0, 2: 3.0, 3: 1.0}),
                    termination=criterion_a,
                    agent_id="a",
                ),
                Probe(
                    queries=("SELECT COUNT(*) FROM sales",),
                    termination=criterion_b,
                    agent_id="b",
                ),
            ]

        serial_criteria = [Counting(), Counting()]
        batch_criteria = [Counting(), Counting()]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [
            serial_system.submit(p) for p in make_probes(*serial_criteria)
        ]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(
            make_probes(*batch_criteria)
        )
        assert_same_outcomes(serial_responses, batch_responses)
        assert [c.calls for c in serial_criteria] == [
            c.calls for c in batch_criteria
        ]

    def test_similar_query_pointer_survives_batching(self):
        """The 'equivalent query answered at turn N' hint depends on
        lenient-history order; pull-forward must preserve it even when
        round-robin would dispatch the later-admitted equivalent first."""
        first = Probe(
            queries=(
                "SELECT COUNT(*) FROM stores",
                "SELECT city, state FROM stores",
            ),
            # Pin the equivalent query to position 1 of the first probe.
            brief=Brief(priorities={0: 5.0, 1: 1.0}),
            agent_id="alice",
        )
        second = Probe(
            queries=("SELECT state, city FROM stores",), agent_id="bob"
        )
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in [first, second]]
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(
            [first, second]
        )
        assert_same_outcomes(serial_responses, batch_responses)

        def equivalence_hints(response):
            return [h for h in response.steering if "answered at" in h]

        assert equivalence_hints(serial_responses[1])
        assert equivalence_hints(batch_responses[1]) == equivalence_hints(
            serial_responses[1]
        )

    def test_turns_advance_per_probe(self):
        system = AgentFirstDataSystem(build_db())
        responses = system.submit_many(overlapping_probes(4))
        assert [r.turn for r in responses] == [1, 2, 3, 4]
        follow_up = system.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
        assert follow_up.turn == 5

    def test_empty_batch(self):
        assert AgentFirstDataSystem(build_db()).submit_many([]) == []


class TestWorkerDifferential:
    """The parallel dispatch path must be byte-identical to serial
    submission at every worker count — speculation may only move engine
    work earlier, never change an answer, a status, or an attribution."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_exact_overlapping(self, workers):
        probes = overlapping_probes(8)
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(
            build_db(), workers=workers
        ).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_sampled_exploration(self, workers):
        probes = [
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales WHERE amount > 5.0",
                    "SELECT product FROM sales WHERE amount > 5.0",
                ),
                brief=Brief(accuracy=0.3),
                agent_id=f"explorer-{i}",
            )
            for i in range(4)
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(
            build_db(), workers=workers
        ).submit_many(probes)
        assert any(
            o.status == "approximate"
            for r in batch_responses
            for o in r.outcomes
        )
        assert_same_outcomes(serial_responses, batch_responses)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_mqo_disabled(self, workers):
        probes = overlapping_probes(4)
        config = SystemConfig(enable_mqo=False)
        serial_system = AgentFirstDataSystem(build_db(), config=config)
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_responses = AgentFirstDataSystem(
            build_db(), config=SystemConfig(enable_mqo=False), workers=workers
        ).submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)
        # Without a cache the engine work is deterministic per query, so
        # even the speculative path must account identical row totals.
        assert sum(r.rows_processed for r in batch_responses) == sum(
            r.rows_processed for r in serial_responses
        )

    @pytest.mark.parametrize("workers", [2, 8])
    def test_termination_discards_speculative_work(self, workers):
        """Speculation may run queries that termination then skips; the
        results must be discarded, and criterion call counts must still
        match serial submission exactly."""

        class Counting:
            def __init__(self):
                self.calls = 0

            def __call__(self, results):
                self.calls += 1
                return self.calls >= 2

        def make_probes(criteria):
            return [
                Probe(
                    queries=(
                        "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
                        "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
                        "SELECT COUNT(*) FROM stores",
                    ),
                    termination=criterion,
                    agent_id=f"agent-{i}",
                )
                for i, criterion in enumerate(criteria)
            ]

        serial_criteria = [Counting() for _ in range(3)]
        batch_criteria = [Counting() for _ in range(3)]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [
            serial_system.submit(p) for p in make_probes(serial_criteria)
        ]
        batch_responses = AgentFirstDataSystem(
            build_db(), workers=workers
        ).submit_many(make_probes(batch_criteria))
        assert_same_outcomes(serial_responses, batch_responses)
        assert [c.calls for c in serial_criteria] == [
            c.calls for c in batch_criteria
        ]

    @pytest.mark.parametrize("workers", [2, 8])
    def test_pull_forward_attribution_survives_speculation(self, workers):
        duplicate = "SELECT COUNT(*) FROM sales WHERE product = 'coffee'"
        first = Probe(
            queries=("SELECT COUNT(*) FROM stores", duplicate),
            brief=Brief(priorities={0: 5.0, 1: 1.0}),
            agent_id="alice",
        )
        second = Probe(queries=(duplicate,), agent_id="bob")
        batch_responses = AgentFirstDataSystem(
            build_db(), workers=workers
        ).submit_many([first, second])
        assert batch_responses[0].outcomes[1].status == "ok"
        assert batch_responses[1].outcomes[0].status == "from_history"
        assert "alice" in batch_responses[1].outcomes[0].reason

    def test_speculation_runs_only_independent_units(self):
        """One engine run per distinct strict fingerprint; a repeat batch
        is answered entirely by history, so nothing speculates."""
        system = AgentFirstDataSystem(build_db(), workers=4)
        system.submit_many(overlapping_probes(6))
        # The shared join plus the two distinct filters (store_id 1 / 2).
        assert system.scheduler.speculative_executions == 3
        system.submit_many(overlapping_probes(6))
        assert system.scheduler.speculative_executions == 3

    def test_workers_one_never_speculates(self):
        system = AgentFirstDataSystem(build_db(), workers=1)
        system.submit_many(overlapping_probes(6))
        assert system.scheduler.speculative_executions == 0

    def test_workers_override_does_not_mutate_shared_config(self):
        config = SystemConfig()
        system = AgentFirstDataSystem(build_db(), config=config, workers=1)
        assert system.scheduler.workers == 1
        assert config.workers is None  # caller's object left untouched


class TestBackendDifferential:
    """The dispatch-backend axis of the equivalence contract, pinned
    explicitly (CI additionally reruns this whole file with
    ``REPRO_SCHEDULER_BACKEND=process`` at several worker counts): the
    same batch must produce byte-identical rows, statuses, and
    attributions on the thread and process substrates."""

    @pytest.mark.parametrize("backend", ["thread", "process", "auto"])
    def test_exact_overlapping_matches_serial(self, backend):
        probes = overlapping_probes(6)
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        batch_system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(dispatch_backend=backend),
            workers=2,
        )
        try:
            batch_responses = batch_system.submit_many(probes)
        finally:
            batch_system.close()
        assert_same_outcomes(serial_responses, batch_responses)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_history_attribution_matches_across_backends(self, backend):
        duplicate = "SELECT COUNT(*) FROM sales WHERE product = 'coffee'"
        first = Probe(
            queries=("SELECT COUNT(*) FROM stores", duplicate),
            brief=Brief(priorities={0: 5.0, 1: 1.0}),
            agent_id="alice",
        )
        second = Probe(queries=(duplicate,), agent_id="bob")
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(dispatch_backend=backend),
            workers=2,
        )
        try:
            batch_responses = system.submit_many([first, second])
        finally:
            system.close()
        assert batch_responses[0].outcomes[1].status == "ok"
        assert batch_responses[1].outcomes[0].status == "from_history"
        assert "alice" in batch_responses[1].outcomes[0].reason


class TestThreadedOptimizerState:
    """ProbeOptimizer owns session-shared history; with the scheduler's
    worker pool (and any concurrent serving threads) in play, its state
    must stay consistent under concurrent ``run_decision`` calls."""

    def test_concurrent_run_decision_keeps_history_consistent(self):
        from repro.plan.fingerprint import fingerprints

        system = AgentFirstDataSystem(build_db())
        optimizer = system.optimizer
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
                "SELECT city, state FROM stores",
                "SELECT state, city FROM stores",
                "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
            ),
            brief=Brief(goal="compute the exact answer"),
        )
        interpreted = system.interpreter.interpret(probe)
        decisions = optimizer.satisficer.decide(interpreted)
        failures: list[Exception] = []

        def hammer(thread_index: int) -> None:
            try:
                for i in range(40):
                    for decision in decisions:
                        outcome = optimizer.run_decision(
                            interpreted, decision, 1 + thread_index * 1000 + i
                        )
                        assert outcome.status in ("ok", "from_history")
                        assert outcome.result is not None
            except Exception as exc:  # surfaced after join
                failures.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
        strict_fps = {
            fingerprints(d.query.plan).strict
            for d in decisions
            if d.query.plan is not None
        }
        lenient_fps = {
            fingerprints(d.query.plan).lenient
            for d in decisions
            if d.query.plan is not None
        }
        # Exactly one entry per distinct fingerprint, each internally
        # consistent — no torn writes, no lost keys, no phantom entries.
        assert set(optimizer.history) == strict_fps
        assert set(optimizer.lenient_history) == lenient_fps
        for lenient, entry in optimizer.lenient_history.items():
            assert entry.lenient_fingerprint == lenient
            assert entry.result is not None


class TestSharedWork:
    def test_batch_processes_fewer_rows_than_independent_agents(self):
        probes = overlapping_probes(8)
        independent_total = 0
        for probe in probes:
            independent_total += AgentFirstDataSystem(build_db()).submit(
                probe
            ).rows_processed
        batch_responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        batch_total = sum(r.rows_processed for r in batch_responses)
        assert batch_total < independent_total

    def test_disjoint_probes_share_nothing(self):
        probes = [
            Probe.sql("SELECT COUNT(*) FROM sales"),
            Probe.sql("SELECT COUNT(*) FROM stores"),
        ]
        responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        report = responses[0].sharing
        assert report is not None
        assert report.cross_agent_subplans == 0

    def test_sharing_report_attached_and_consistent(self):
        probes = overlapping_probes(6)
        responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        report = responses[0].sharing
        assert report is not None
        assert all(r.sharing is report for r in responses)
        assert report.probes == 6
        assert report.agents == 6
        assert report.queries == 12
        assert report.cross_agent_subplans > 0
        assert report.duplicate_fraction > 0.5
        assert report.rows_processed_shared == sum(
            r.rows_processed for r in responses
        )

    def test_cross_agent_steering_hint(self):
        probes = overlapping_probes(5)
        responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert any(
            "other agent" in hint for hint in responses[0].steering
        ), responses[0].steering

    def test_budget_hint_when_brief_budget_exhausted(self):
        expensive = (
            "SELECT s1.id FROM sales s1 JOIN sales s2 ON s1.store_id = s2.store_id"
        )
        probes = [
            Probe(
                queries=(expensive, "SELECT COUNT(*) FROM sales"),
                brief=Brief(goal="exact answer", max_cost=1.0),
                agent_id="strapped",
            ),
            Probe.sql("SELECT COUNT(*) FROM stores"),
        ]
        responses = AgentFirstDataSystem(build_db()).submit_many(probes)
        assert any("deprioritised" in hint for hint in responses[0].steering)

    def test_single_probe_batch_equals_submit(self):
        probe = Probe.sql("SELECT COUNT(*) FROM sales", goal="exact")
        via_submit = AgentFirstDataSystem(build_db()).submit(probe)
        via_batch = AgentFirstDataSystem(build_db()).submit_many([probe])[0]
        assert_same_outcomes([via_submit], [via_batch])
        assert via_submit.sharing is not None


class TestParallelAgentsThroughScheduler:
    def test_parallel_attempts_match_standalone_execution(self):
        from repro.agents.model import GPT_4O_MINI_SIM
        from repro.agents.parallel import run_field_attempt
        from repro.util.rng import RngStream
        from repro.workloads.bird import BirdTaskPool

        task = BirdTaskPool(seed=1).generate(2)[0]
        outcome = run_parallel_attempts(task, GPT_4O_MINI_SIM, 12, seed=9)
        assert len(outcome.attempts) == 12
        # Batched serving must not change any attempt's answer signature.
        rng = RngStream(9, "parallel", task.task_id, GPT_4O_MINI_SIM.name)
        for index, batched in enumerate(outcome.attempts):
            standalone = run_field_attempt(
                task, GPT_4O_MINI_SIM, rng.child("agent", index)
            )
            assert batched.sql == standalone.sql
            assert batched.ok == standalone.ok
            assert batched.signature == standalone.signature

    def test_serving_system_is_shared_per_database(self):
        from repro.agents.model import GPT_4O_MINI_SIM
        from repro.workloads.bird import BirdTaskPool

        task = BirdTaskPool(seed=3).generate(1)[0]
        observers_before = len(task.db._observers)
        run_parallel_attempts(task, GPT_4O_MINI_SIM, 4, seed=1)
        observers_first = len(task.db._observers)
        run_parallel_attempts(task, GPT_4O_MINI_SIM, 4, seed=2)
        # One serving system per database: repeat calls must not stack
        # change observers (each system registers one, forever).
        assert len(task.db._observers) == observers_first
        assert observers_first > observers_before

    def test_mismatched_serving_system_rejected(self):
        import pytest as _pytest

        from repro.agents.model import GPT_4O_MINI_SIM
        from repro.workloads.bird import BirdTaskPool

        tasks = BirdTaskPool(seed=4, databases_per_domain=1).generate(8)
        other = next(t for t in tasks if t.db is not tasks[0].db)
        foreign_system = AgentFirstDataSystem(other.db)
        with _pytest.raises(ValueError, match="different database"):
            run_parallel_attempts(
                tasks[0], GPT_4O_MINI_SIM, 2, seed=1, system=foreign_system
            )


class TestFederatedCohort:
    def test_cohort_logs_relational_interactions(self):
        from repro.agents.federated import run_federated_cohort
        from repro.agents.model import GPT_4O_MINI_SIM
        from repro.workloads.multibackend import build_cross_backend_tasks

        task = build_cross_backend_tasks(seed=2, n_tasks=1)[0]
        outcomes, system = run_federated_cohort(
            task, GPT_4O_MINI_SIM, n_agents=4, seed=7
        )
        assert len(outcomes) == 4
        assert all(o.answer is not None for o in outcomes)
        # Batched relational full attempts must still appear in the
        # environment's interaction log (Figure 3's counting unit).
        relational_queries = [
            r
            for r in task.env.log
            if r.backend == task.rel_backend and r.operation == "query"
        ]
        assert relational_queries
        assert system.turn > 0


class TestInterleavedCacheStress:
    def test_hit_miss_counters_consistent_across_batches(self):
        system = AgentFirstDataSystem(build_db())
        cache = system.optimizer.cache
        assert cache is not None
        batch_hits = batch_misses = 0
        for round_no in range(6):
            responses = system.submit_many(overlapping_probes(4 + round_no))
            report = responses[0].sharing
            batch_hits += report.cache_hits
            batch_misses += report.cache_misses
        hits, misses, _ = cache.counters()
        # Per-batch deltas must tile the cache's global counters exactly.
        assert (hits, misses) == (batch_hits, batch_misses)

    def test_threaded_hammer_keeps_counters_consistent(self):
        cache = SubplanCache(max_entries=64)
        attempts_per_thread = 500
        n_threads = 8

        def hammer(thread_index: int) -> None:
            for i in range(attempts_per_thread):
                key = (f"fp-{(thread_index + i) % 100}", 1.0)
                if cache.get(key) is None:
                    cache.put(key, [(thread_index, i)])

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hits, misses, evictions = cache.counters()
        assert hits + misses == n_threads * attempts_per_thread
        assert len(cache) <= 64
        assert evictions > 0
