"""Tests for repro.util: hashing, RNG streams, text, tables."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.hashing import stable_hash, stable_hash_int
from repro.util.rng import RngStream, derive_seed
from repro.util.tabulate import format_series, format_table
from repro.util.text import (
    character_ngrams,
    jaccard,
    normalize_identifier,
    singularize,
    tokenize_words,
)


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash(("a", 1, 2.5)) == stable_hash(("a", 1, 2.5))

    def test_type_tags_prevent_collisions(self):
        assert stable_hash(1) != stable_hash("1")
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(None) != stable_hash("None")
        assert stable_hash((1, 2)) != stable_hash([1, 2])

    def test_dict_order_insensitive(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_frozenset_order_insensitive(self):
        assert stable_hash(frozenset({1, 2, 3})) == stable_hash(frozenset({3, 1, 2}))

    def test_nested_structures(self):
        value = {"rows": [(1, "x"), (2, None)], "tags": frozenset({"a"})}
        assert stable_hash(value) == stable_hash(value)

    def test_unhashable_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash(object())

    def test_int_hash_bits(self):
        assert 0 <= stable_hash_int("hello", bits=16) < (1 << 16)

    @given(st.text(), st.text())
    def test_distinct_strings_rarely_collide(self, left, right):
        if left != right:
            assert stable_hash(left) != stable_hash(right)


class TestRngStream:
    def test_same_name_same_sequence(self):
        a = RngStream(42, "agents")
        b = RngStream(42, "agents")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_names_differ(self):
        a = RngStream(42, "agents")
        b = RngStream(42, "sampling")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_child_streams_independent(self):
        parent = RngStream(7, "x")
        child1 = parent.child("one")
        child2 = parent.child("two")
        seq1 = [child1.random() for _ in range(3)]
        seq2 = [child2.random() for _ in range(3)]
        assert seq1 != seq2
        # Drawing from the parent does not disturb replayed children.
        parent.random()
        replayed = parent.child("one")
        assert [replayed.random() for _ in range(3)] == seq1

    def test_bernoulli_bounds(self):
        stream = RngStream(1, "b")
        assert not any(stream.bernoulli(0.0) for _ in range(50))
        stream = RngStream(1, "b2")
        assert all(stream.bernoulli(1.0) for _ in range(50))

    def test_weighted_choice_respects_zero_weight(self):
        stream = RngStream(3, "w")
        for _ in range(50):
            assert stream.weighted_choice({"a": 1.0, "b": 0.0}) == "a"

    def test_poisson_zero_lambda(self):
        assert RngStream(1, "p").poisson(0) == 0

    def test_poisson_mean_reasonable(self):
        stream = RngStream(5, "poisson")
        draws = [stream.poisson(4.0) for _ in range(500)]
        assert 3.0 < sum(draws) / len(draws) < 5.0

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestText:
    def test_normalize_identifier(self):
        assert normalize_identifier('"MyTable"') == "mytable"
        assert normalize_identifier("Users") == "users"

    def test_tokenize_words(self):
        assert tokenize_words("Hello, SQL-World 42!") == ["hello", "sql", "world", "42"]

    def test_character_ngrams_boundaries(self):
        grams = character_ngrams("cat")
        assert "#ca" in grams and "at#" in grams

    def test_character_ngrams_short_word(self):
        assert character_ngrams("ab", n=5) == ["#ab#"]

    def test_singularize(self):
        assert singularize("categories") == "category"
        assert singularize("stores") == "store"
        assert singularize("glasses") == "glasse" or singularize("glasses")
        assert singularize("class") == "class"

    def test_jaccard(self):
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)
        assert jaccard(set(), set()) == 0.0


class TestTabulate:
    def test_format_table_alignment(self):
        text = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_format_table_floats(self):
        text = format_table(["x"], [[1.23456]], float_fmt=".2f")
        assert "1.23" in text

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_format_series_merges_axes(self):
        text = format_series(
            "k", {"a": {1: 0.5, 2: 0.6}, "b": {2: 0.7, 3: 0.8}}
        )
        lines = text.splitlines()
        assert lines[0].split()[0] == "k"
        assert len(lines) == 2 + 3  # header + rule + 3 x values
