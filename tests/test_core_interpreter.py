"""Tests for briefs, probes, the interpreter, and the satisficer."""

from __future__ import annotations

import pytest

from repro.core.brief import Brief, Phase
from repro.core.interpreter import ProbeInterpreter
from repro.core.probe import Probe
from repro.core.satisfice import Satisficer


class TestBriefPhaseInference:
    def test_explicit_phase_wins(self):
        brief = Brief(goal="compute the final answer", phase=Phase.METADATA_EXPLORATION)
        assert brief.infer_phase() is Phase.METADATA_EXPLORATION

    def test_exploration_keywords(self):
        assert (
            Brief(goal="explore what tables exist and sample data").infer_phase()
            is Phase.METADATA_EXPLORATION
        )

    def test_solution_keywords(self):
        assert (
            Brief(goal="compute the exact final answer").infer_phase()
            is Phase.SOLUTION_FORMULATION
        )

    def test_validation_keywords(self):
        assert Brief(goal="verify the totals match").infer_phase() is Phase.VALIDATION

    def test_default_is_solution(self):
        assert Brief(goal="").infer_phase() is Phase.SOLUTION_FORMULATION

    def test_priority_default(self):
        brief = Brief(priorities={0: 5.0})
        assert brief.priority_of(0) == 5.0
        assert brief.priority_of(1) == 1.0


class TestInterpreter:
    def test_plans_valid_queries(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql("SELECT COUNT(*) FROM sales", goal="exact count")
        interpreted = interpreter.interpret(probe)
        assert interpreted.queries[0].plan is not None
        assert interpreted.queries[0].estimated_cost > 0

    def test_parse_error_captured_not_raised(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql("SELECT FROM WHERE")
        interpreted = interpreter.interpret(probe)
        assert interpreted.queries[0].plan is None
        assert interpreted.queries[0].parse_error

    def test_unknown_table_captured(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        interpreted = interpreter.interpret(Probe.sql("SELECT * FROM ghost"))
        assert "no such table" in interpreted.queries[0].parse_error

    def test_small_queries_always_exact(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql(
            "SELECT * FROM sales", goal="explore the sample data roughly"
        )
        interpreted = interpreter.interpret(probe)
        # 10-row table: under the exactness threshold.
        assert interpreted.queries[0].sample_rate == 1.0

    def test_explicit_accuracy_respected_for_big_tables(self, sales_db):
        sales_db.insert_rows(
            "sales",
            [(100 + i, 1, "coffee", 1.0, 2024) for i in range(3000)],
        )
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql("SELECT COUNT(*) FROM sales", accuracy=0.2)
        interpreted = interpreter.interpret(probe)
        assert interpreted.queries[0].sample_rate == pytest.approx(0.2)

    def test_exploration_phase_samples_big_tables(self, sales_db):
        sales_db.insert_rows(
            "sales",
            [(100 + i, 1, "coffee", 1.0, 2024) for i in range(3000)],
        )
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql(
            "SELECT COUNT(*) FROM sales", goal="explore rough statistics"
        )
        interpreted = interpreter.interpret(probe)
        assert interpreted.queries[0].sample_rate < 1.0

    def test_max_cost_squeezes_accuracy(self, sales_db):
        sales_db.insert_rows(
            "sales",
            [(100 + i, 1, "coffee", 1.0, 2024) for i in range(5000)],
        )
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe(
            queries=("SELECT COUNT(*) FROM sales",),
            brief=Brief(goal="compute the answer", max_cost=500.0),
        )
        interpreted = interpreter.interpret(probe)
        assert interpreted.queries[0].sample_rate < 0.5


class TestSatisficer:
    def test_irrelevant_query_pruned_in_exploration(self, sales_db):
        sales_db.execute("CREATE TABLE flight_crew_roster (id INT, pilot TEXT)")
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql(
            "SELECT * FROM flight_crew_roster",
            "SELECT * FROM sales",
            goal="explore coffee sales revenue by store",
        )
        interpreted = interpreter.interpret(probe)
        decisions = Satisficer().decide(interpreted)
        by_sql = {d.query.sql: d for d in decisions}
        assert by_sql["SELECT * FROM flight_crew_roster"].action == "prune"
        assert by_sql["SELECT * FROM sales"].action == "execute"

    def test_no_pruning_in_solution_phase(self, sales_db):
        sales_db.execute("CREATE TABLE flight_crew_roster (id INT, pilot TEXT)")
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql(
            "SELECT * FROM flight_crew_roster",
            goal="compute the exact coffee sales revenue answer",
        )
        decisions = Satisficer().decide(interpreter.interpret(probe))
        assert decisions[0].action == "execute"

    def test_pruning_disabled_flag(self, sales_db):
        sales_db.execute("CREATE TABLE flight_crew_roster (id INT, pilot TEXT)")
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe.sql(
            "SELECT * FROM flight_crew_roster",
            goal="explore coffee sales revenue",
        )
        decisions = Satisficer(enable_pruning=False).decide(
            interpreter.interpret(probe)
        )
        assert all(d.action == "execute" for d in decisions)

    def test_k_of_n_keeps_k(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales WHERE year = 2023",
                "SELECT COUNT(*) FROM sales WHERE year = 2024",
                "SELECT COUNT(*) FROM stores",
            ),
            brief=Brief(goal="compare two years", complete_k_of_n=2),
        )
        decisions = Satisficer().decide(interpreter.interpret(probe))
        executed = [d for d in decisions if d.action == "execute"]
        pruned = [d for d in decisions if d.action == "prune"]
        assert len(executed) == 2
        assert len(pruned) == 1
        assert "k-of-n" in pruned[0].reason

    def test_k_of_n_larger_than_n_noop(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe(
            queries=("SELECT COUNT(*) FROM sales",),
            brief=Brief(complete_k_of_n=5),
        )
        decisions = Satisficer().decide(interpreter.interpret(probe))
        assert all(d.action == "execute" for d in decisions)

    def test_ordering_by_priority(self, sales_db):
        interpreter = ProbeInterpreter(sales_db)
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
            ),
            brief=Brief(priorities={1: 10.0}),
        )
        decisions = Satisficer().decide(interpreter.interpret(probe))
        assert decisions[0].query.index == 1
