"""Process-pool dispatch backend: differential + lifecycle tests.

The contract mirrors the thread backend's: at any worker count, on any
backend, ``submit_many`` answers are byte-identical to serial ``submit``
on an identically-fresh system — speculation only moves engine work onto
other cores, never changes an answer, a status, or an attribution. On top
of that, the process backend's pool lifecycle must be economical (one
snapshot ship per catalog version, reuse across batches) and resilient
(any pool failure falls back to in-process execution mid-batch).
"""

from __future__ import annotations

import os

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.core.dispatch import (
    BACKEND_ENV_VAR,
    ProcessDispatcher,
    resolve_backend,
    threads_can_parallelise,
)
from repro.db import Database


def build_db() -> Database:
    db = Database("dispatch")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 3, "coffee" if i % 2 else "tea", float(i % 40))
            for i in range(900)
        ],
    )
    return db


SHARED_JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)


def overlapping_probes(n: int) -> list[Probe]:
    return [
        Probe(
            queries=(
                SHARED_JOIN,
                f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + agent % 2}",
            ),
            brief=Brief(goal="compute the exact answer"),
            agent_id=f"agent-{agent}",
        )
        for agent in range(n)
    ]


def process_system(db: Database | None = None, workers: int = 2, **config_kwargs):
    config = SystemConfig(dispatch_backend="process", **config_kwargs)
    return AgentFirstDataSystem(db or build_db(), config=config, workers=workers)


def assert_same_outcomes(serial_responses, batch_responses):
    assert len(serial_responses) == len(batch_responses)
    for serial, batch in zip(serial_responses, batch_responses):
        assert serial.turn == batch.turn
        assert [o.sql for o in serial.outcomes] == [o.sql for o in batch.outcomes]
        assert [o.status for o in serial.outcomes] == [
            o.status for o in batch.outcomes
        ]
        assert [o.reason for o in serial.outcomes] == [
            o.reason for o in batch.outcomes
        ]
        for serial_outcome, batch_outcome in zip(serial.outcomes, batch.outcomes):
            serial_rows = serial_outcome.result.rows if serial_outcome.result else None
            batch_rows = batch_outcome.result.rows if batch_outcome.result else None
            assert serial_rows == batch_rows


class TestBackendResolution:
    def test_explicit_values(self):
        assert resolve_backend("thread") == "thread"
        assert resolve_backend("process") == "process"
        assert resolve_backend("PROCESS") == "process"

    def test_default_is_thread(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert resolve_backend(None) == "thread"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend(None) == "process"

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert resolve_backend("thread") == "thread"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown dispatch backend"):
            resolve_backend("fibers")

    def test_auto_matches_host_capability(self):
        resolved = resolve_backend("auto")
        multicore = (os.cpu_count() or 1) > 1
        expected = "process" if multicore and not threads_can_parallelise() else "thread"
        assert resolved == expected

    def test_workers_one_never_builds_a_dispatcher(self):
        system = process_system(workers=1)
        assert system.scheduler._dispatcher is None
        system.submit_many(overlapping_probes(4))  # serial loop, no pool
        assert system.scheduler.speculative_executions == 0


class TestProcessDifferential:
    """Serial vs process-backend batch, over the scenarios that exercise
    every replay interaction (history, pruning, errors, termination,
    sampling, MQO-off)."""

    def test_exact_overlapping(self):
        probes = overlapping_probes(8)
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system() as system:
            batch_responses = system.submit_many(probes)
            assert system.scheduler._dispatcher.units_dispatched > 0
        assert_same_outcomes(serial_responses, batch_responses)

    def test_errors_and_pruning(self):
        probes = [
            Probe.sql("SELECT * FROM ghost_table"),
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales",
                    "SELECT COUNT(*) FROM stores",
                ),
                brief=Brief(goal="exact answer", complete_k_of_n=1),
            ),
            Probe.sql("SELECT COUNT(*) FROM sales"),
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system() as system:
            batch_responses = system.submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)

    def test_engine_error_surfaces_identically(self):
        probes = [
            Probe.sql("SELECT 1 / (id - id) FROM stores"),
            Probe.sql("SELECT COUNT(*) FROM sales"),
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system() as system:
            batch_responses = system.submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)
        assert batch_responses[0].outcomes[0].status == "error"
        assert "division by zero" in batch_responses[0].outcomes[0].reason

    def test_termination_discards_speculative_work(self):
        class Counting:
            def __init__(self):
                self.calls = 0

            def __call__(self, results):
                self.calls += 1
                return self.calls >= 2

        def make_probes(criteria):
            return [
                Probe(
                    queries=(
                        "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
                        "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
                        "SELECT COUNT(*) FROM stores",
                    ),
                    termination=criterion,
                    agent_id=f"agent-{i}",
                )
                for i, criterion in enumerate(criteria)
            ]

        serial_criteria = [Counting() for _ in range(3)]
        batch_criteria = [Counting() for _ in range(3)]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [
            serial_system.submit(p) for p in make_probes(serial_criteria)
        ]
        with process_system() as system:
            batch_responses = system.submit_many(make_probes(batch_criteria))
        assert_same_outcomes(serial_responses, batch_responses)
        assert [c.calls for c in serial_criteria] == [
            c.calls for c in batch_criteria
        ]

    def test_sampled_exploration_draws_identical_rows(self):
        probes = [
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales WHERE amount > 5.0",
                    "SELECT product FROM sales WHERE amount > 5.0",
                ),
                brief=Brief(accuracy=0.3),
                agent_id=f"explorer-{i}",
            )
            for i in range(4)
        ]
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system() as system:
            batch_responses = system.submit_many(probes)
        assert any(
            o.status == "approximate" for r in batch_responses for o in r.outcomes
        )
        assert_same_outcomes(serial_responses, batch_responses)

    def test_mqo_disabled_accounts_identical_row_totals(self):
        """No cache anywhere — including in the workers: the process
        backend must not smuggle sharing into the ablation baseline."""
        probes = overlapping_probes(4)
        serial_system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(enable_mqo=False)
        )
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system(enable_mqo=False) as system:
            batch_responses = system.submit_many(probes)
        assert_same_outcomes(serial_responses, batch_responses)
        assert sum(r.rows_processed for r in batch_responses) == sum(
            r.rows_processed for r in serial_responses
        )


class TestPoolLifecycle:
    def test_snapshot_ships_once_and_pool_reused_across_batches(self):
        with process_system() as system:
            dispatcher = system.scheduler._dispatcher
            system.submit_many(overlapping_probes(6))
            assert dispatcher.snapshot_ships == 1
            assert dispatcher.units_dispatched == 3  # join + two filters
            # Repeat batch: history answers everything, nothing ships,
            # and the pool (with its snapshot) is untouched.
            system.submit_many(overlapping_probes(6))
            assert dispatcher.snapshot_ships == 1
            assert dispatcher.units_dispatched == 3

    def test_write_invalidates_snapshot_and_reships(self):
        with process_system() as system:
            dispatcher = system.scheduler._dispatcher
            system.submit_many(overlapping_probes(4))
            assert dispatcher.snapshot_ships == 1
            system.db.execute("INSERT INTO stores VALUES (4,'Austin','Texas')")
            responses = system.submit_many(overlapping_probes(4))
            assert dispatcher.snapshot_ships == 2
            # The re-shipped snapshot sees the write.
            serial_system = AgentFirstDataSystem(build_db())
            serial_system.db.execute("INSERT INTO stores VALUES (4,'Austin','Texas')")
            serial_responses = [
                serial_system.submit(p) for p in overlapping_probes(4)
            ]
            for serial, batch in zip(serial_responses, responses):
                for a, b in zip(serial.outcomes, batch.outcomes):
                    assert (a.result.rows if a.result else None) == (
                        b.result.rows if b.result else None
                    )

    def test_cached_units_are_not_reshipped(self):
        """With history off, repeat batches re-select every unit — but
        units whose materialisation already sits in the in-process cache
        must not cross the process boundary again."""
        with process_system(enable_history=False) as system:
            dispatcher = system.scheduler._dispatcher
            system.submit_many(overlapping_probes(4))
            shipped_first = dispatcher.units_dispatched
            assert shipped_first > 0
            responses = system.submit_many(overlapping_probes(4))
            assert dispatcher.units_dispatched == shipped_first  # all cache-resident
            assert all(
                outcome.status == "ok"
                for response in responses
                for outcome in response.outcomes
            )

    def test_prestart_spawns_pool_before_first_batch(self):
        with process_system() as system:
            assert system.prestart() == "process"
            dispatcher = system.scheduler._dispatcher
            assert dispatcher.snapshot_ships == 1
            system.submit_many(overlapping_probes(4))
            assert dispatcher.snapshot_ships == 1  # first batch reused it

    def test_pool_failure_falls_back_to_threads_mid_batch(self, monkeypatch):
        probes = overlapping_probes(6)
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in probes]
        with process_system() as system:
            dispatcher = system.scheduler._dispatcher

            def broken_run(*args, **kwargs):
                raise RuntimeError("pool exploded")

            monkeypatch.setattr(dispatcher, "run", broken_run)
            batch_responses = system.submit_many(probes)
            # Fallback executed on threads: same answers, pool retired.
            assert dispatcher._pool is None
            assert system.scheduler.speculative_executions == 3
        assert_same_outcomes(serial_responses, batch_responses)

    def test_close_is_idempotent_and_serving_survives(self):
        system = process_system()
        system.submit_many(overlapping_probes(4))
        system.close()
        system.close()
        assert system.scheduler._dispatcher._pool is None
        # Post-close batches rebuild what they need.
        responses = system.submit_many(overlapping_probes(4))
        assert all(o.executed or o.status == "from_history"
                   for r in responses for o in r.outcomes)
        system.close()

    def test_dispatcher_retire_without_pool_is_safe(self):
        dispatcher = ProcessDispatcher(workers=2)
        dispatcher.retire()
        dispatcher.retire()
        assert dispatcher.snapshot_ships == 0
