"""Tests for the plan layer: builder, optimizer rules, fingerprints, cost.

The central property: every optimizer rewrite preserves query results. We
run a corpus of queries through the unoptimized and optimized paths and
compare row multisets.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.engine.executor import ExecContext, Executor
from repro.plan import (
    Filter,
    HashJoin,
    IndexScan,
    Scan,
    build_plan,
    estimate_cost,
    fingerprint,
    optimize_plan,
    subexpressions,
)
from repro.plan.rules import fold_constants, prune_projections, push_down_filters
from repro.sql.parser import parse_statement

QUERY_CORPUS = [
    "SELECT * FROM stores",
    "SELECT city FROM stores WHERE state = 'CA'",
    "SELECT s.city, x.amount FROM stores s JOIN sales x ON s.id = x.store_id",
    "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
    " WHERE x.amount > 50 AND s.state = 'CA'",
    "SELECT product, SUM(amount) AS total FROM sales GROUP BY product",
    "SELECT product, SUM(amount) AS total FROM sales WHERE year = 2023"
    " GROUP BY product HAVING SUM(amount) > 30 ORDER BY total DESC",
    "SELECT DISTINCT state FROM stores ORDER BY state",
    "SELECT city FROM stores ORDER BY opened DESC LIMIT 2",
    "SELECT sub.product FROM (SELECT product, SUM(amount) AS t FROM sales"
    " GROUP BY product) sub WHERE sub.t > 100",
    "SELECT s.state, COUNT(*) FROM stores s LEFT JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.state",
    "SELECT x.product FROM sales x WHERE x.store_id IN"
    " (SELECT id FROM stores WHERE state = 'CA')",
    "SELECT city FROM stores WHERE 1 = 1 AND state = 'CA'",
    "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
    " AND x.amount > 100 WHERE s.opened < 2012",
]


def run_plan(db: Database, plan) -> list:
    executor = Executor(db.catalog, ExecContext())
    return executor.run(plan).rows


class TestOptimizerEquivalence:
    @pytest.mark.parametrize("sql", QUERY_CORPUS)
    def test_optimized_matches_unoptimized(self, sales_db, sql):
        statement = parse_statement(sql)
        raw = build_plan(statement, sales_db.catalog)
        optimized = optimize_plan(raw, sales_db.catalog)
        assert sorted(map(repr, run_plan(sales_db, raw))) == sorted(
            map(repr, run_plan(sales_db, optimized))
        )

    @pytest.mark.parametrize("sql", QUERY_CORPUS)
    def test_optimized_with_indexes_matches(self, sales_db, sql):
        sales_db.catalog.create_hash_index("stores", "state")
        sales_db.catalog.create_sorted_index("sales", "amount")
        statement = parse_statement(sql)
        raw = build_plan(statement, sales_db.catalog)
        optimized = optimize_plan(raw, sales_db.catalog)
        assert sorted(map(repr, run_plan(sales_db, raw))) == sorted(
            map(repr, run_plan(sales_db, optimized))
        )


class TestPushdown:
    def test_filter_sinks_below_join(self, sales_db):
        plan = sales_db.plan_select(
            "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
            " WHERE s.state = 'CA' AND x.amount > 50"
        )
        # After pushdown, no Filter should sit directly above the HashJoin.
        join = next(n for n in plan.walk() if isinstance(n, HashJoin))
        assert any(isinstance(c, Filter) for c in join.children())

    def test_pushdown_through_subquery(self, sales_db):
        plan = sales_db.plan_select(
            "SELECT sub.city FROM (SELECT city, state FROM stores) sub"
            " WHERE sub.state = 'CA'"
        )
        filters = [n for n in plan.walk() if isinstance(n, Filter)]
        assert filters, "filter should survive"
        # The filter must sit below the SubqueryScan, adjacent to the scan.
        scan_filter = [
            f for f in filters if isinstance(f.child, (Scan, IndexScan))
        ]
        assert scan_filter

    def test_left_join_right_filter_not_pushed(self, sales_db):
        plan = sales_db.plan_select(
            "SELECT s.city FROM stores s LEFT JOIN sales x ON s.id = x.store_id"
            " WHERE x.amount > 50"
        )
        join = next(n for n in plan.walk() if isinstance(n, HashJoin))
        # The right-side filter stays above the LEFT join for correctness.
        assert not isinstance(join.right, Filter)

    def test_fixpoint_terminates(self, sales_db):
        plan = sales_db.plan_select(
            "SELECT s.city FROM stores s WHERE s.state = 'CA' AND s.opened > 2000"
            " AND s.city LIKE 'B%' AND s.id < 100"
        )
        assert push_down_filters(plan) == push_down_filters(push_down_filters(plan))


class TestConstantFolding:
    def test_true_conjunct_removed(self, sales_db):
        statement = parse_statement("SELECT city FROM stores WHERE 1 = 1 AND state = 'CA'")
        plan = fold_constants(build_plan(statement, sales_db.catalog))
        filters = [n for n in plan.walk() if isinstance(n, Filter)]
        assert all("1 = 1" not in f.predicate.sql() for f in filters)

    def test_arithmetic_folded(self, sales_db):
        statement = parse_statement("SELECT 2 + 3 * 4 FROM stores")
        plan = fold_constants(build_plan(statement, sales_db.catalog))
        assert "14" in plan.describe()


class TestProjectionPruning:
    def test_scan_narrowed(self, sales_db):
        plan = sales_db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        scan = next(n for n in plan.walk() if isinstance(n, Scan))
        assert set(scan.columns) == {"city", "state"}

    def test_count_star_keeps_single_column(self, sales_db):
        plan = sales_db.plan_select("SELECT COUNT(*) FROM stores")
        scan = next(n for n in plan.walk() if isinstance(n, Scan))
        assert len(scan.columns) == 1

    def test_join_keys_kept(self, sales_db):
        plan = sales_db.plan_select(
            "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
        )
        scans = {n.table: n for n in plan.walk() if isinstance(n, Scan)}
        assert "id" in scans["stores"].columns
        assert "store_id" in scans["sales"].columns
        assert "product" not in scans["sales"].columns


class TestIndexSelection:
    def test_equality_uses_hash_index(self, sales_db):
        sales_db.catalog.create_hash_index("stores", "state")
        plan = sales_db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        assert any(isinstance(n, IndexScan) and n.is_equality for n in plan.walk())

    def test_range_uses_sorted_index(self, sales_db):
        sales_db.catalog.create_sorted_index("sales", "amount")
        plan = sales_db.plan_select("SELECT id FROM sales WHERE amount > 100")
        index_scan = next(n for n in plan.walk() if isinstance(n, IndexScan))
        assert not index_scan.is_equality
        assert index_scan.low == 100 and not index_scan.low_inclusive

    def test_no_index_no_rewrite(self, sales_db):
        plan = sales_db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        assert not any(isinstance(n, IndexScan) for n in plan.walk())


class TestFingerprints:
    def plan_for(self, db, sql):
        return build_plan(parse_statement(sql), db.catalog)

    def test_alias_insensitive(self, sales_db):
        a = self.plan_for(sales_db, "SELECT city FROM stores WHERE state = 'CA'")
        b = self.plan_for(sales_db, "SELECT s.city FROM stores s WHERE s.state = 'CA'")
        assert fingerprint(a) == fingerprint(b)

    def test_conjunct_order_insensitive(self, sales_db):
        a = self.plan_for(
            sales_db, "SELECT city FROM stores WHERE state = 'CA' AND opened > 2000"
        )
        b = self.plan_for(
            sales_db, "SELECT city FROM stores WHERE opened > 2000 AND state = 'CA'"
        )
        assert fingerprint(a) == fingerprint(b)

    def test_commutative_equality(self, sales_db):
        a = self.plan_for(sales_db, "SELECT city FROM stores WHERE state = 'CA'")
        b = self.plan_for(sales_db, "SELECT city FROM stores WHERE 'CA' = state")
        assert fingerprint(a) == fingerprint(b)

    def test_join_side_insensitive_lenient(self, sales_db):
        a = self.plan_for(
            sales_db,
            "SELECT s.id, x.id FROM stores s JOIN sales x ON s.id = x.store_id",
        )
        b = self.plan_for(
            sales_db,
            "SELECT s.id, x.id FROM sales x JOIN stores s ON x.store_id = s.id",
        )
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a, strict=True) != fingerprint(b, strict=True)

    def test_projection_order_strictness(self, sales_db):
        a = self.plan_for(sales_db, "SELECT city, state FROM stores")
        b = self.plan_for(sales_db, "SELECT state, city FROM stores")
        assert fingerprint(a) == fingerprint(b)
        assert fingerprint(a, strict=True) != fingerprint(b, strict=True)

    def test_different_literals_differ(self, sales_db):
        a = self.plan_for(sales_db, "SELECT city FROM stores WHERE state = 'CA'")
        b = self.plan_for(sales_db, "SELECT city FROM stores WHERE state = 'WA'")
        assert fingerprint(a) != fingerprint(b)

    def test_flipped_inequality_equal(self, sales_db):
        a = self.plan_for(sales_db, "SELECT id FROM sales WHERE amount > 100")
        b = self.plan_for(sales_db, "SELECT id FROM sales WHERE 100 < amount")
        assert fingerprint(a) == fingerprint(b)

    def test_subexpressions_counts(self, sales_db):
        plan = self.plan_for(
            sales_db,
            "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
            " WHERE x.amount > 10",
        )
        subs = subexpressions(plan)
        assert len(subs) == plan.node_count()
        assert {s.size for s in subs} >= {1, plan.node_count()}
        root = max(subs, key=lambda s: s.size)
        assert root.root_code == "PR"

    def test_root_codes_cover_taxonomy(self, sales_db):
        plan = self.plan_for(
            sales_db,
            "SELECT s.state, COUNT(*) FROM stores s JOIN sales x"
            " ON s.id = x.store_id WHERE x.amount > 10 GROUP BY s.state"
            " ORDER BY s.state LIMIT 5",
        )
        codes = {s.root_code for s in subexpressions(plan)}
        assert {"PR", "TS", "FI", "HJ", "UA", "OT"} <= codes


class TestCostModel:
    def test_scan_cost_equals_rows(self, sales_db):
        plan = build_plan(parse_statement("SELECT * FROM sales"), sales_db.catalog)
        estimate = estimate_cost(plan, sales_db.catalog)
        assert estimate.rows == pytest.approx(10, abs=1)

    def test_filter_reduces_estimate(self, sales_db):
        all_plan = sales_db.plan_select("SELECT * FROM sales")
        filtered = sales_db.plan_select("SELECT * FROM sales WHERE product = 'pastry'")
        assert (
            estimate_cost(filtered, sales_db.catalog).rows
            < estimate_cost(all_plan, sales_db.catalog).rows
        )

    def test_join_cost_superadditive(self, sales_db):
        join = sales_db.plan_select(
            "SELECT s.city FROM stores s JOIN sales x ON s.id = x.store_id"
        )
        scan = sales_db.plan_select("SELECT city FROM stores")
        assert (
            estimate_cost(join, sales_db.catalog).cost
            > estimate_cost(scan, sales_db.catalog).cost
        )

    def test_index_scan_cheaper_than_full_scan(self, sales_db):
        no_index = sales_db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        cost_before = estimate_cost(no_index, sales_db.catalog).cost
        sales_db.catalog.create_hash_index("stores", "state")
        with_index = sales_db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        cost_after = estimate_cost(with_index, sales_db.catalog).cost
        assert cost_after <= cost_before

    def test_estimate_api(self, sales_db):
        estimate = sales_db.estimate("SELECT * FROM sales WHERE amount > 100")
        assert estimate.rows >= 0
        assert estimate.cost > 0


class TestPropertyBasedEquivalence:
    """Random single-table predicates: optimized == unoptimized."""

    predicate = st.sampled_from(
        [
            "amount > 50",
            "amount <= 100",
            "product = 'coffee'",
            "product <> 'tea'",
            "year = 2023",
            "amount BETWEEN 20 AND 120",
            "product IN ('tea', 'pastry')",
            "product LIKE 'c%'",
            "amount IS NOT NULL",
        ]
    )

    @given(parts=st.lists(predicate, min_size=1, max_size=3), disjunct=st.booleans())
    @settings(max_examples=30, deadline=None)
    def test_random_predicates(self, parts, disjunct):
        db = Database("prop")
        db.execute("CREATE TABLE sales (id INT, product TEXT, amount FLOAT, year INT)")
        db.execute(
            "INSERT INTO sales VALUES "
            "(1,'coffee',120.5,2023),(2,'tea',30.0,2023),(3,'coffee',80.0,2023),"
            "(4,'coffee',200.0,2023),(5,'tea',55.5,2024),(6,'coffee',50.25,2024),"
            "(7,NULL,99.0,2024),(8,'tea',NULL,2024)"
        )
        joiner = " OR " if disjunct else " AND "
        sql = "SELECT id FROM sales WHERE " + joiner.join(parts)
        statement = parse_statement(sql)
        raw = build_plan(statement, db.catalog)
        optimized = optimize_plan(raw, db.catalog)
        raw_rows = sorted(Executor(db.catalog).run(raw).rows)
        opt_rows = sorted(Executor(db.catalog).run(optimized).rows)
        assert raw_rows == opt_rows
