"""Serialization-seam regression tests for the process dispatch backend.

The process pool's correctness rests on two seams staying faithful:

* **plans** — every :class:`PlanNode` type must pickle round-trip to an
  equal tree with identical fingerprints (the worker re-keys its subplan
  cache from them), with the fingerprint memo stripped from the wire form;
* **catalog snapshots** — ``Table.snapshot_state()``/``Table.restore()``
  and ``Catalog.snapshot()``/``Catalog.from_snapshot()`` must round-trip
  rows, row ids, and indexes exactly, and every write path (inserts,
  updates, deletes, DDL, branch checkout via ``replace_table``, even
  direct table mutation) must move :meth:`Catalog.version` so shipped
  worker snapshots are invalidated.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.dispatch import SpeculationPayload, _worker_init, _worker_run
from repro.core.optimizer import PrecomputedExecution
from repro.db import Database
from repro.plan import logical
from repro.plan.fingerprint import fingerprints
from repro.storage.catalog import Catalog
from repro.storage.schema import Column, TableSchema
from repro.storage.table import Table
from repro.storage.types import DataType


def build_db() -> Database:
    db = Database("serial")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','CA'),(2,'Oakland','CA'),"
        "(3,'Seattle','WA')"
    )
    db.insert_rows(
        "sales",
        [(i, 1 + i % 3, "coffee" if i % 2 else "tea", float(i % 7)) for i in range(40)],
    )
    return db


#: One SQL statement per executable plan-node type the planner can emit.
PLAN_CORPUS = {
    "scan+project": "SELECT city FROM stores",
    "filter": "SELECT city FROM stores WHERE state = 'CA'",
    "hash_join": (
        "SELECT s.city, x.amount FROM stores s JOIN sales x ON s.id = x.store_id"
    ),
    "left_join": (
        "SELECT s.city, x.amount FROM stores s LEFT JOIN sales x ON s.id = x.store_id"
    ),
    "nested_loop": (
        "SELECT s.city FROM stores s JOIN sales x ON s.id < x.store_id"
    ),
    "aggregate": (
        "SELECT product, COUNT(*), SUM(amount) FROM sales GROUP BY product"
    ),
    "sort_limit": "SELECT city FROM stores ORDER BY city DESC LIMIT 2 OFFSET 1",
    "distinct": "SELECT DISTINCT product FROM sales",
    "subquery_scan": "SELECT t.id FROM (SELECT id FROM stores) t",
    "one_row": "SELECT 1",
    "case_between_inlist": (
        "SELECT CASE WHEN amount BETWEEN 1 AND 3 THEN 'low' ELSE 'high' END"
        " FROM sales WHERE product IN ('coffee', 'tea')"
    ),
}


class TestPlanPickling:
    @pytest.mark.parametrize("label", sorted(PLAN_CORPUS))
    def test_round_trip_equal_with_matching_fingerprints(self, label):
        db = build_db()
        plan = db.plan_select(PLAN_CORPUS[label])
        original = fingerprints(plan)  # also populates the per-node memo
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert fingerprints(clone) == original
        assert [r for r in clone.walk()] == [r for r in plan.walk()]

    def test_index_scan_round_trip(self):
        db = build_db()
        db.catalog.create_hash_index("stores", "state")
        plan = db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        assert any(isinstance(n, logical.IndexScan) for n in plan.walk())
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert fingerprints(clone) == fingerprints(plan)

    def test_every_plan_node_type_covered(self):
        """The corpus must exercise each executable operator class."""
        db = build_db()
        db.catalog.create_hash_index("stores", "state")
        seen: set[type] = set()
        for sql in PLAN_CORPUS.values():
            for node in db.plan_select(sql).walk():
                seen.add(type(node))
        seen.update(
            type(n)
            for n in db.plan_select("SELECT city FROM stores WHERE state = 'CA'").walk()
        )
        executable = {
            logical.Scan,
            logical.IndexScan,
            logical.OneRow,
            logical.SubqueryScan,
            logical.Filter,
            logical.Project,
            logical.HashJoin,
            logical.NestedLoopJoin,
            logical.Aggregate,
            logical.Sort,
            logical.Limit,
            logical.Distinct,
        }
        assert executable <= seen
        # ViewScan is planner-invisible (the maintenance runtime
        # substitutes it at execution time), so its round-trip coverage
        # lives in the dedicated maintenance-rewrite tests below.

    def test_maintenance_view_scan_round_trip(self):
        """ViewScan crosses the dispatch pickle boundary carrying its rows
        (optimizer.speculation_payload rewrites plans before shipping), and
        a pickle regression would only show as a silent thread fallback —
        so round-trip it explicitly, memo-stripping included."""
        scan = logical.ViewScan(
            name="mv_test",
            source_strict="deadbeef",
            build_id=3,
            columns=(logical.OutputCol("city", "s"), logical.OutputCol("total")),
            rows=((u"Berkeley", 150.5), ("Oakland", 80.0)),
            projection=(1, 0),
        )
        plan = logical.Limit(child=scan, limit=1)
        original = fingerprints(plan)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan
        assert fingerprints(clone) == original
        assert clone.child.materialized_rows() == scan.materialized_rows()
        assert "_fingerprint_memo" not in pickle.loads(pickle.dumps(scan)).__dict__

    def test_row_id_ordered_index_scan_round_trip_with_distinct_digest(self):
        """The maintenance rewrite's rid-ordered IndexScan variant must
        pickle and must never share a digest with the planner's native
        ordering (their output row order differs)."""
        db = build_db()
        db.catalog.create_hash_index("stores", "state")
        plan = db.plan_select("SELECT city FROM stores WHERE state = 'CA'")
        (native,) = [n for n in plan.walk() if isinstance(n, logical.IndexScan)]
        import dataclasses

        ordered = dataclasses.replace(native, row_id_order=True)
        clone = pickle.loads(pickle.dumps(ordered))
        assert clone == ordered
        assert fingerprints(clone) == fingerprints(ordered)
        assert fingerprints(ordered).strict != fingerprints(native).strict

    def test_memo_is_stripped_from_the_wire_form(self):
        db = build_db()
        plan = db.plan_select(PLAN_CORPUS["hash_join"])
        fingerprints(plan)  # memoize every node
        assert "_fingerprint_memo" in plan.__dict__
        clone = pickle.loads(pickle.dumps(plan))
        for node in clone.walk():
            assert "_fingerprint_memo" not in node.__dict__
        # Lazily re-memoized on first use, to identical digests.
        assert fingerprints(clone) == fingerprints(plan)

    def test_speculation_payload_and_result_round_trip(self):
        db = build_db()
        plan = db.plan_select(PLAN_CORPUS["aggregate"])
        payload = SpeculationPayload(plan=plan, sample_rate=0.5, sample_seed=7)
        clone = pickle.loads(pickle.dumps(payload))
        assert clone == payload

        result = db.execute(PLAN_CORPUS["aggregate"])
        precomputed = PrecomputedExecution(result=result)
        back = pickle.loads(pickle.dumps(precomputed))
        assert back.result.rows == result.rows
        assert back.result.columns == result.columns
        assert back.result.stats.rows_processed == result.stats.rows_processed
        assert back.error is None


class TestTableSnapshot:
    def make_table(self) -> Table:
        schema = TableSchema(
            "t",
            (
                Column("id", DataType.INTEGER, primary_key=True),
                Column("name", DataType.TEXT),
            ),
        )
        table = Table(schema)
        table.insert_many([(i, f"row-{i}") for i in range(600)])  # > 2 chunks
        return table

    def test_round_trip_preserves_rows_ids_and_counters(self):
        table = self.make_table()
        table.delete(3)
        table.update(5, (5, "edited"))
        state = pickle.loads(pickle.dumps(table.snapshot_state()))
        restored = Table.restore(state)
        assert restored.rows() == table.rows()
        assert list(restored.scan_with_ids()) == list(table.scan_with_ids())
        assert restored.next_row_id == table.next_row_id
        assert restored.data_version == table.data_version

    def test_restore_is_isolated_from_later_source_writes(self):
        table = self.make_table()
        restored = Table.restore(table.snapshot_state())
        before = restored.rows()
        table.insert((9999, "late"))
        table.update(0, (0, "mutated"))
        assert restored.rows() == before


class TestCatalogSnapshot:
    def test_round_trip_restores_tables_and_rebuilt_indexes(self):
        db = build_db()
        db.catalog.create_hash_index("sales", "store_id")
        db.catalog.create_sorted_index("sales", "amount")
        snapshot = pickle.loads(pickle.dumps(db.catalog.snapshot()))
        restored = Catalog.from_snapshot(snapshot)
        for name in db.catalog.table_names():
            assert restored.table(name).rows() == db.catalog.table(name).rows()
        original_index = db.catalog.hash_index("sales", "store_id")
        restored_index = restored.hash_index("sales", "store_id")
        assert restored_index is not None
        assert restored_index.lookup(2) == original_index.lookup(2)
        original_sorted = db.catalog.sorted_index("sales", "amount")
        restored_sorted = restored.sorted_index("sales", "amount")
        assert restored_sorted is not None
        assert restored_sorted.lookup_range(1.0, 3.0) == original_sorted.lookup_range(
            1.0, 3.0
        )

    def test_worker_execution_on_restored_snapshot_matches_direct(self):
        """End-to-end over the real worker entry points, in-process."""
        db = build_db()
        sql = "SELECT product, COUNT(*), SUM(amount) FROM sales GROUP BY product"
        plan = db.plan_select(sql)
        _worker_init(pickle.loads(pickle.dumps(db.catalog.snapshot())), True)
        outcome = _worker_run(SpeculationPayload(plan=plan, sample_rate=1.0, sample_seed=3))
        assert outcome.error is None
        assert outcome.result.rows == db.execute(sql).rows

    def test_worker_surfaces_engine_errors_as_strings(self):
        db = build_db()
        plan = db.plan_select("SELECT 1 / (id - id) FROM stores")
        _worker_init(db.catalog.snapshot(), False)
        outcome = _worker_run(SpeculationPayload(plan=plan, sample_rate=1.0, sample_seed=0))
        assert outcome.result is None
        assert "division by zero" in outcome.error

    def test_every_write_path_bumps_the_catalog_version(self):
        db = build_db()
        catalog = db.catalog

        def bumped() -> bool:
            nonlocal version
            moved = catalog.version() != version
            version = catalog.version()
            return moved

        version = catalog.version()
        catalog.insert_rows("stores", [(7, "Austin", "TX")])
        assert bumped()
        catalog.update_row("stores", 0, (1, "Berkeley", "California"))
        assert bumped()
        catalog.delete_row("stores", 1)
        assert bumped()
        db.execute("CREATE TABLE extra (id INT)")
        assert bumped()
        db.execute("DROP TABLE extra")
        assert bumped()
        # Branch checkout: a whole-table swap, invisible to per-table
        # counters when the swapped-in data_version happens to match.
        stores = catalog.table("stores")
        catalog.replace_table(Table.restore(stores.snapshot_state()))
        assert bumped()
        # Direct table mutation bypassing the catalog DML helpers.
        catalog.table("stores").insert((8, "Portland", "OR"))
        assert bumped()
        # No write -> no movement.
        db.execute("SELECT COUNT(*) FROM stores")
        assert not bumped()

    def test_snapshot_version_matches_source_at_capture(self):
        db = build_db()
        snapshot = db.catalog.snapshot()
        assert snapshot.version == db.catalog.version()
        db.insert_rows("stores", [(9, "Reno", "NV")])
        assert snapshot.version != db.catalog.version()

    def test_branch_writes_invalidate_branch_snapshots(self):
        """txn write paths flow through the catalog DML helpers, so a
        branch's catalog version moves on every branch write."""
        from repro.txn.branches import BranchManager

        manager = BranchManager(build_db())
        branch = manager.fork("main", "experiment")
        version = branch.db.catalog.version()
        branch.execute("INSERT INTO stores VALUES (7,'Austin','TX')")
        assert branch.db.catalog.version() != version
        version = branch.db.catalog.version()
        branch.update_row("stores", 0, (1, "Berkeley", "California"))
        assert branch.db.catalog.version() != version


class TestColumnBatchPickling:
    """The columnar engine's :class:`ColumnBatch` rides the process
    dispatch seam (workers ship query results column-major). Like
    ``PlanNode.__getstate__`` strips the fingerprint memo, the batch's
    wire form must strip its caches — the materialised row view and the
    lazy numpy mirrors — and rebuild them on demand after the trip."""

    def make_batch(self):
        from repro.engine.columnar import ColumnBatch

        rows = [(1, "a", 1.5), (2, None, -0.5), (3, "c", None)]
        return ColumnBatch.from_rows(rows, 3), rows

    def test_round_trip_preserves_columns_and_rows(self):
        batch, rows = self.make_batch()
        clone = pickle.loads(pickle.dumps(batch))
        assert clone.columns == batch.columns
        assert clone.length == batch.length == 3
        assert clone.to_rows() == rows

    def test_caches_are_stripped_from_the_wire_form(self):
        batch, rows = self.make_batch()
        assert batch.to_rows() == rows  # populate the row cache
        batch.numpy_column(0)  # populate the numpy mirror cache
        state = batch.__getstate__()
        assert state == (batch.columns, batch.length)
        clone = pickle.loads(pickle.dumps(batch))
        assert clone._rows is None
        assert clone._numpy == {}
        # Lazily rebuilt on first use, to identical values.
        assert clone.to_rows() == rows
        assert clone.numpy_column(0) is not None or batch.numpy_column(0) is None

    def test_empty_and_zero_width_batches(self):
        from repro.engine.columnar import ColumnBatch

        empty = ColumnBatch.from_rows([], 4)
        clone = pickle.loads(pickle.dumps(empty))
        assert clone.length == 0
        assert clone.to_rows() == []

        zero_width = ColumnBatch.from_rows([(), ()], 0)
        back = pickle.loads(pickle.dumps(zero_width))
        assert back.length == 2
        assert back.to_rows() == [(), ()]

    def test_result_rows_cross_the_process_seam_column_major(self):
        """End-to-end: a worker running the columnar engine packs result
        rows as a ColumnBatch; the parent unpacks to the same row list
        the row engine ships."""
        from repro.core.dispatch import ProcessDispatcher

        db = build_db()
        plan = db.plan_select(PLAN_CORPUS["aggregate"])
        row_payload = SpeculationPayload(
            plan=plan, sample_rate=1.0, sample_seed=0, engine="row"
        )
        col_payload = SpeculationPayload(
            plan=plan, sample_rate=1.0, sample_seed=0, engine="columnar"
        )
        dispatcher = ProcessDispatcher(workers=2)
        try:
            row_results = dispatcher.run(db.catalog, [row_payload], use_cache=True)
            col_results = dispatcher.run(db.catalog, [col_payload], use_cache=True)
        finally:
            dispatcher.retire()
        assert col_results[0].result.rows == row_results[0].result.rows
        assert isinstance(col_results[0].result.rows, list)
