"""Tests for the sharded serving tier: router, matchmaker, scatter-gather.

Three contracts pinned here:

* **passthrough** — at ``shards=1`` the tier serves the *source* database
  through one bare ``AgentFirstDataSystem``: rows, statuses, and steering
  are byte-identical to an unsharded system (no scatter, no extra notes);
* **merge semantics** — cross-shard COUNT/SUM/MIN/MAX/AVG (global and
  grouped, AVG via SUM+COUNT partials) merge to exactly the single-shard
  answer, including the empty-shard and single-row-shard edges;
* **placement** — sessions are shard-sticky by identity, partition-pinned
  probes route to the owner shard without scatter, and non-distributable
  probes against partitioned data carry an honest partial-coverage note.
"""

from __future__ import annotations

import threading

import pytest

from repro.agents.federated import run_federated_cohort
from repro.agents.model import GPT_4O_MINI_SIM
from repro.core import AgentFirstDataSystem, Brief, Probe
from repro.db import Database
from repro.shard import (
    CapacityAdvert,
    HashRing,
    Matchmaker,
    ShardedSystem,
    ShardSession,
    WorkUnit,
    resolve_shard_count,
    sharded_serving_system,
)
from repro.workloads.multibackend import build_cross_backend_tasks
from test_scheduler import assert_same_outcomes, build_db, overlapping_probes

TENANTS = [f"t{i}" for i in range(8)]


def build_tenant_db(rows_per_tenant: int = 24) -> Database:
    """A tenant-partitioned fact table plus a small replicated dimension."""
    db = Database("tenants")
    db.execute("CREATE TABLE sales (tenant TEXT, qty INT, amount FLOAT)")
    db.execute("CREATE TABLE regions (id INT PRIMARY KEY, name TEXT)")
    db.execute("INSERT INTO regions VALUES (1,'west'),(2,'east')")
    rows = []
    for t_index, tenant in enumerate(TENANTS):
        for i in range(rows_per_tenant):
            rows.append((tenant, t_index * 100 + i, float((i * 7) % 50) / 2.0))
    db.insert_rows("sales", rows)
    return db


PARTITION = {"sales": "tenant"}


# -- hash ring ----------------------------------------------------------------


class TestHashRing:
    def test_owner_is_deterministic_and_in_range(self):
        ring = HashRing(4)
        owners = {key: ring.owner(key) for key in TENANTS}
        assert owners == {key: HashRing(4).owner(key) for key in TENANTS}
        assert all(0 <= shard < 4 for shard in owners.values())

    def test_keys_spread_across_shards(self):
        ring = HashRing(4)
        owners = {ring.owner(f"tenant-{i}") for i in range(64)}
        assert len(owners) == 4

    def test_pin_beats_hash(self):
        ring = HashRing(4)
        hashed = ring.owner("vip")
        target = (hashed + 1) % 4
        ring.pin("vip", target)
        assert ring.owner("vip") == target
        assert ring.pins() == {"vip": target}
        ring.unpin("vip")
        assert ring.owner("vip") == hashed

    def test_add_shard_only_moves_captured_arcs(self):
        """Consistent hashing: growing the ring reassigns keys *only* to
        the newcomer — no key moves between pre-existing shards."""
        ring = HashRing(4)
        keys = [f"k{i}" for i in range(256)]
        before = {key: ring.owner(key) for key in keys}
        new_id = ring.add_shard()
        assert new_id == 4
        moved = 0
        for key in keys:
            after = ring.owner(key)
            if after != before[key]:
                assert after == new_id
                moved += 1
        assert 0 < moved < len(keys)


# -- matchmaker ---------------------------------------------------------------


def advert(shard_id, pending=0, tripped=False, slots=4, replicas=0):
    return CapacityAdvert(
        shard_id=shard_id,
        pending=pending,
        windows_served=0,
        queue_depth_peak=pending,
        watermark_tripped=tripped,
        replicas=replicas,
        slots=slots,
    )


class TestMatchmaker:
    def test_tripped_shard_pulls_nothing(self):
        mm = Matchmaker()
        units = [WorkUnit(probe=Probe.sql("SELECT 1")) for _ in range(3)]
        for unit in units:
            mm.enqueue(unit)
        matches = mm.match([advert(0, tripped=True, slots=0), advert(1, slots=2)])
        assert all(shard == 1 for _, shard in matches)
        assert len(matches) == 2  # shard 1 had two slots; third unit deferred
        assert mm.depth() == 1

    def test_round_spreads_instead_of_dogpiling(self):
        mm = Matchmaker()
        for _ in range(4):
            mm.enqueue(WorkUnit(probe=Probe.sql("SELECT 1")))
        matches = mm.match([advert(0, pending=0, slots=4), advert(1, pending=1, slots=4)])
        by_shard = {0: 0, 1: 0}
        for _, shard in matches:
            by_shard[shard] += 1
        # In-round pending bumps per assignment: the burst splits instead
        # of all four landing on the initially-emptier shard 0.
        assert by_shard[0] >= by_shard[1] >= 1

    def test_forced_assignment_after_max_deferrals(self):
        mm = Matchmaker(max_deferrals=1)
        unit = WorkUnit(probe=Probe.sql("SELECT 1"))
        mm.enqueue(unit)
        everyone_tripped = [advert(0, tripped=True, slots=0), advert(1, tripped=True, slots=0)]
        assert mm.match(everyone_tripped) == []  # deferral 1
        forced = mm.match(everyone_tripped)  # degrade, don't drop
        assert len(forced) == 1
        assert unit.assigned.is_set()
        assert mm.stats()["units_forced"] == 1

    def test_target_shard_restricts_matching(self):
        mm = Matchmaker()
        unit = WorkUnit(probe=Probe.sql("SELECT 1"), target_shard=2)
        mm.enqueue(unit)
        assert mm.match([advert(0), advert(1)]) == []  # target absent: defer
        matches = mm.match([advert(0), advert(2)])
        assert matches == [(unit, 2)]

    def test_place_prefers_emptiest_then_replicas(self):
        mm = Matchmaker()
        assert mm.place([advert(0, pending=5), advert(1, pending=1)]) == 1
        assert mm.place([advert(0, replicas=2), advert(1, replicas=0)]) == 0
        # Everyone tripped: place still answers (least-loaded fallback).
        assert mm.place([advert(0, pending=9, tripped=True, slots=0),
                         advert(1, pending=2, tripped=True, slots=0)]) == 1


# -- shards=1 passthrough differential ---------------------------------------


class TestPassthrough:
    def test_byte_identical_to_bare_system(self):
        """rows/statuses/steering at shards=1 == a bare system's."""
        probes = overlapping_probes(6) + [
            Probe.sql("SELECT * FROM ghost_table"),
            Probe(
                queries=("SELECT city, COUNT(*) FROM stores GROUP BY city",),
                brief=Brief(goal="exact"),
                agent_id="solo",
            ),
        ]
        bare = AgentFirstDataSystem(build_db())
        sharded = ShardedSystem(build_db(), shards=1, partition=PARTITION)
        try:
            expected = bare.submit_many(probes)
            got = sharded.submit_many(probes)
            assert_same_outcomes(expected, got)
            for want, have in zip(expected, got):
                assert want.steering == have.steering
        finally:
            bare.close()
            sharded.close()

    def test_session_is_the_inner_systems_session(self):
        sharded = ShardedSystem(build_db(), shards=1)
        try:
            session = sharded.session(agent_id="a1")
            assert not isinstance(session, ShardSession)
            response = session.submit(
                Probe.sql("SELECT COUNT(*) FROM sales")
            ).result(timeout=30.0)
            assert response.outcomes[0].result.rows == [(900,)]
            assert sharded.db is sharded.shards[0].db  # serves the source
        finally:
            sharded.close()

    def test_resolve_shard_count_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shard_count(None) == 1
        monkeypatch.setenv("REPRO_SHARDS", "4")
        assert resolve_shard_count(None) == 4
        assert resolve_shard_count(2) == 2  # explicit beats env
        assert resolve_shard_count(0) == 1


# -- cross-shard aggregate merging (differential) ------------------------------

MERGE_QUERIES = [
    "SELECT COUNT(*) FROM sales",
    "SELECT SUM(qty) FROM sales",
    "SELECT MIN(amount), MAX(amount) FROM sales",
    "SELECT AVG(amount) FROM sales",
    "SELECT COUNT(*), SUM(qty), MIN(qty), MAX(qty), AVG(qty) FROM sales",
    "SELECT tenant, COUNT(*) AS n, SUM(amount) AS total FROM sales GROUP BY tenant",
    "SELECT tenant, AVG(qty) FROM sales GROUP BY tenant",
    "SELECT MIN(qty), MAX(qty) FROM sales WHERE amount > 10.0",
    "SELECT SUM(qty) FROM sales WHERE qty < 0",  # empty everywhere -> NULL
    "SELECT COUNT(amount) FROM sales WHERE qty % 2 = 0",
]


def serve_one(system, sql):
    response = system.submit(Probe.sql(sql))
    outcome = response.outcomes[0]
    assert outcome.status == "ok", outcome.reason
    return outcome.result


@pytest.fixture(scope="module")
def merge_pair():
    """One bare system and one 4-shard tier over identical tenant data."""
    bare = AgentFirstDataSystem(build_tenant_db())
    sharded = ShardedSystem(build_tenant_db(), shards=4, partition=PARTITION)
    yield bare, sharded
    bare.close()
    sharded.close()


class TestAggregateMerge:
    @pytest.mark.parametrize("sql", MERGE_QUERIES)
    def test_matches_single_shard_execution(self, merge_pair, sql):
        bare, sharded = merge_pair
        expected = serve_one(bare, sql)
        got = serve_one(sharded, sql)
        assert got.columns == expected.columns
        assert sorted(got.rows, key=repr) == sorted(expected.rows, key=repr)

    def test_scatter_names_the_shards_consulted(self, merge_pair):
        _, sharded = merge_pair
        response = sharded.submit(Probe.sql("SELECT AVG(amount) FROM sales"))
        assert any(
            line.startswith("scatter-gather: consulted shards [")
            and "sales" in line
            for line in response.steering
        )
        assert any("SUM+COUNT partials" in line for line in response.steering)

    def test_non_aggregate_scatter_concatenates(self, merge_pair):
        bare, sharded = merge_pair
        sql = "SELECT tenant, qty FROM sales WHERE amount > 20.0"
        expected = serve_one(bare, sql)
        got = serve_one(sharded, sql)
        assert got.columns == expected.columns
        assert sorted(got.rows) == sorted(expected.rows)

    def test_empty_shard_edges(self):
        """One lonely tenant: most shards hold zero rows, and the merge
        must still reproduce SUM->NULL / COUNT->0 / MIN/MAX->NULL exactly."""
        db = Database("lonely")
        db.execute("CREATE TABLE sales (tenant TEXT, qty INT, amount FLOAT)")
        db.insert_rows("sales", [("only", 5, 2.5), ("only", 7, 7.5)])
        bare = AgentFirstDataSystem(db)
        sharded = ShardedSystem(db, shards=4, partition=PARTITION)
        try:
            populated = sum(
                1
                for handle in sharded.shards
                if list(handle.db.catalog.table("sales").scan())
            )
            assert populated == 1  # the other three shards are empty
            for sql in [
                "SELECT COUNT(*) FROM sales",
                "SELECT SUM(qty), AVG(amount) FROM sales",
                "SELECT MIN(qty), MAX(qty) FROM sales",
                "SELECT SUM(qty) FROM sales WHERE qty > 100",  # NULL even on
                # the populated shard
                "SELECT tenant, COUNT(*) FROM sales GROUP BY tenant",
            ]:
                expected = serve_one(bare, sql)
                got = serve_one(sharded, sql)
                assert got.columns == expected.columns
                assert sorted(got.rows, key=repr) == sorted(expected.rows, key=repr)
        finally:
            bare.close()
            sharded.close()

    def test_single_row_shard_edges(self):
        """Each tenant holds exactly one row: every partial aggregate is a
        one-row aggregate (the AVG partial's COUNT is 1 everywhere)."""
        db = Database("sparse")
        db.execute("CREATE TABLE sales (tenant TEXT, qty INT, amount FLOAT)")
        db.insert_rows(
            "sales", [(t, i * 3, float(i)) for i, t in enumerate(TENANTS)]
        )
        bare = AgentFirstDataSystem(db)
        sharded = ShardedSystem(db, shards=4, partition=PARTITION)
        try:
            for sql in [
                "SELECT COUNT(*), SUM(qty), AVG(qty) FROM sales",
                "SELECT MIN(amount), MAX(amount) FROM sales",
                "SELECT tenant, AVG(amount) FROM sales GROUP BY tenant",
            ]:
                expected = serve_one(bare, sql)
                got = serve_one(sharded, sql)
                assert got.columns == expected.columns
                assert sorted(got.rows, key=repr) == sorted(expected.rows, key=repr)
        finally:
            bare.close()
            sharded.close()


# -- routing ------------------------------------------------------------------


class TestRouting:
    def test_tenant_pinned_probe_routes_to_owner_without_scatter(self, merge_pair):
        bare, sharded = merge_pair
        tenant = TENANTS[3]
        sql = f"SELECT COUNT(*), SUM(qty) FROM sales WHERE tenant = '{tenant}'"
        expected = serve_one(bare, sql)
        response = sharded.submit(Probe.sql(sql))
        outcome = response.outcomes[0]
        assert outcome.status == "ok"
        assert outcome.result.rows == expected.rows
        # Pruned serving is ordinary single-shard serving: no scatter
        # lines, no partial-coverage warnings.
        assert not any("scatter-gather" in line for line in response.steering)
        assert not any("partition only" in line for line in response.steering)

    def test_in_list_pinning_spanning_two_owners_scatters(self, merge_pair):
        bare, sharded = merge_pair
        sql = (
            "SELECT COUNT(*) FROM sales"
            f" WHERE tenant IN ('{TENANTS[0]}', '{TENANTS[5]}')"
        )
        expected = serve_one(bare, sql)
        got = serve_one(sharded, sql)
        assert got.rows == expected.rows

    def test_non_distributable_probe_warns_partial_coverage(self, merge_pair):
        _, sharded = merge_pair
        response = sharded.submit(
            Probe.sql("SELECT tenant, qty FROM sales ORDER BY qty LIMIT 3")
        )
        assert any("partition only" in line for line in response.steering)

    def test_replicated_table_serves_anywhere_unwarned(self, merge_pair):
        bare, sharded = merge_pair
        sql = "SELECT name FROM regions"
        expected = serve_one(bare, sql)
        got_response = sharded.submit(Probe.sql(sql))
        assert sorted(got_response.outcomes[0].result.rows) == sorted(expected.rows)
        assert got_response.steering == []


class TestSessionPlacement:
    def test_sessions_are_shard_sticky_and_spread(self):
        sharded = ShardedSystem(build_tenant_db(4), shards=4, partition=PARTITION)
        try:
            homes = {}
            for index in range(16):
                first = sharded.session(agent_id=f"field-{index}")
                again = sharded.session(agent_id=f"field-{index}")
                assert isinstance(first, ShardSession)
                assert first.shard_id == again.shard_id  # sticky
                homes[f"field-{index}"] = first.shard_id
            assert len(set(homes.values())) > 1  # the swarm spreads
        finally:
            sharded.close()

    def test_principal_outranks_agent_id(self):
        sharded = ShardedSystem(build_tenant_db(4), shards=4, partition=PARTITION)
        try:
            a = sharded.session(agent_id="x1", principal="acme")
            b = sharded.session(agent_id="x2", principal="acme")
            assert a.shard_id == b.shard_id  # tenant keeps its agents together
        finally:
            sharded.close()

    def test_session_scatter_accounts_to_the_session(self):
        sharded = ShardedSystem(build_tenant_db(4), shards=4, partition=PARTITION)
        try:
            session = sharded.session(agent_id="roamer")
            ticket = session.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
            response = ticket.result(timeout=30.0)
            assert response.outcomes[0].result.rows == [(4 * len(TENANTS),)]
            assert session.session.probes_submitted == 1
        finally:
            sharded.close()


# -- rebalancing --------------------------------------------------------------


class TestRebalancing:
    def test_add_shard_migrates_and_answers_survive(self):
        sharded = ShardedSystem(build_tenant_db(6), shards=2, partition=PARTITION)
        try:
            before = serve_one(sharded, "SELECT COUNT(*), SUM(qty) FROM sales")
            new_id = sharded.add_shard()
            assert new_id == 2 and sharded.count == 3
            # Every row sits on the shard the ring says owns its tenant.
            for handle in sharded.shards:
                for row in handle.db.catalog.table("sales").scan():
                    assert sharded.router.owner_of_value(row[0]) == handle.shard_id
            moved = list(
                sharded.shards[new_id].db.catalog.table("sales").scan()
            )
            assert moved  # the newcomer captured at least one tenant arc
            after = serve_one(sharded, "SELECT COUNT(*), SUM(qty) FROM sales")
            assert after.rows == before.rows
        finally:
            sharded.close()

    def test_add_shard_rejected_on_passthrough(self):
        sharded = ShardedSystem(build_db(), shards=1)
        try:
            with pytest.raises(ValueError):
                sharded.add_shard()
        finally:
            sharded.close()


# -- lifecycle (satellite: close semantics) -----------------------------------


class TestClose:
    def test_sharded_close_is_concurrent_safe_and_idempotent(self):
        sharded = ShardedSystem(build_tenant_db(2), shards=4, partition=PARTITION)
        sharded.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        errors = []

        def hammer():
            try:
                sharded.close()
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        sharded.close()  # and once more after the stampede
        assert errors == []

    def test_bare_system_close_before_prestart(self):
        """Regression: close() on a system that never served and never
        prestarted must be a clean no-op, twice."""
        system = AgentFirstDataSystem(build_db())
        system.close()
        system.close()

    def test_sharded_close_before_any_serving(self):
        sharded = ShardedSystem(build_tenant_db(2), shards=3, partition=PARTITION)
        sharded.close()
        sharded.close()


# -- stats + cached tier ------------------------------------------------------


class TestTierSurface:
    def test_stats_aggregate_the_stable_pair(self, merge_pair):
        _, sharded = merge_pair
        stats = sharded.stats()
        assert stats["shards"] == 4
        assert len(stats["per_shard"]) == 4
        assert stats["windows_served"] == sum(
            s["windows_served"] for s in stats["per_shard"]
        )
        assert stats["queue_depth_peak"] == max(
            s["queue_depth_peak"] for s in stats["per_shard"]
        )
        assert "units_matched" in stats["matchmaker"]

    def test_sharded_serving_system_caches_and_rebuilds(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        db = build_tenant_db(2)
        first = sharded_serving_system(db)
        assert isinstance(first, ShardedSystem)
        assert sharded_serving_system(db) is first  # cached
        db.execute("INSERT INTO sales VALUES ('t0', 999, 1.0)")
        rebuilt = sharded_serving_system(db)  # catalog version moved
        try:
            assert rebuilt is not first
            total = serve_one(rebuilt, "SELECT COUNT(*) FROM sales").rows[0][0]
            assert total == 2 * len(TENANTS) + 1
        finally:
            rebuilt.close()


# -- the federated cohort rides the tier (satellite) ---------------------------


class TestFederatedCohortSharding:
    def test_lockstep_cohort_is_shard_sticky_per_agent(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        task = build_cross_backend_tasks(seed=2, n_tasks=1)[0]
        outcomes, system = run_federated_cohort(
            task, GPT_4O_MINI_SIM, n_agents=6, seed=11, max_steps=10
        )
        try:
            assert isinstance(system, ShardedSystem)
            assert len(outcomes) == 6
            # Lockstep sessions place by agent identity: reopening any
            # agent's session lands on the same shard every time.
            homes = {}
            for index in range(6):
                session = system.session(agent_id=f"field-{index}")
                assert isinstance(session, ShardSession)
                assert (
                    system.session(agent_id=f"field-{index}").shard_id
                    == session.shard_id
                )
                homes[index] = session.shard_id
            assert len(set(homes.values())) > 1
        finally:
            system.close()

    def test_cohort_unsharded_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        task = build_cross_backend_tasks(seed=3, n_tasks=1)[0]
        outcomes, system = run_federated_cohort(
            task, GPT_4O_MINI_SIM, n_agents=3, seed=5, max_steps=8
        )
        assert not isinstance(system, ShardedSystem)
        assert len(outcomes) == 3
