"""Tests for the probe optimizer, steering, and the system facade."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.core.brief import Phase
from repro.core.probe import ProbeResponse, QueryOutcome
from repro.core.steering import JoinDiscovery, WhyNotDiagnoser
from repro.db import Database
from repro.memstore import ArtifactKind
from repro.util.hashing import stable_hash_int


@pytest.fixture
def system_db() -> Database:
    db = Database("sys")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.execute(
        "INSERT INTO sales VALUES (1,1,'coffee',120.5),(2,1,'tea',30.0),"
        "(3,2,'coffee',80.0),(4,3,'coffee',200.0)"
    )
    return db


@pytest.fixture
def system(system_db) -> AgentFirstDataSystem:
    return AgentFirstDataSystem(system_db)


class TestProbeExecution:
    def test_basic_probe_answers(self, system):
        response = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert response.outcomes[0].status == "ok"
        assert response.first_result().first_value() == 4

    def test_multi_query_probe_order_preserved(self, system):
        response = system.submit(
            Probe.sql(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
            )
        )
        assert [o.sql for o in response.outcomes] == [
            "SELECT COUNT(*) FROM sales",
            "SELECT COUNT(*) FROM stores",
        ]

    def test_bad_query_is_error_outcome_not_exception(self, system):
        response = system.submit(Probe.sql("SELECT * FROM ghost"))
        assert response.outcomes[0].status == "error"
        assert "no such table" in response.outcomes[0].reason

    def test_turns_increment(self, system):
        first = system.submit(Probe.sql("SELECT 1"))
        second = system.submit(Probe.sql("SELECT 1"))
        assert second.turn == first.turn + 1

    def test_repeat_query_answered_from_history(self, system):
        system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        response = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        outcome = response.outcomes[0]
        assert outcome.status == "from_history"
        assert outcome.result.first_value() == 4
        assert outcome.result.stats.rows_scanned > 0  # original result object

    def test_history_shared_across_agents(self, system):
        system.submit(
            Probe(queries=("SELECT COUNT(*) FROM sales",), agent_id="alice")
        )
        response = system.submit(
            Probe(queries=("SELECT COUNT(*) FROM sales",), agent_id="bob")
        )
        assert response.outcomes[0].status == "from_history"
        assert "alice" in response.outcomes[0].reason

    def test_history_invalidated_by_writes(self, system, system_db):
        system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        system_db.execute("INSERT INTO sales VALUES (5,1,'tea',10.0)")
        response = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert response.outcomes[0].status == "ok"
        assert response.first_result().first_value() == 5

    def test_termination_criterion_stops_probe(self, system):
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
                "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
                "SELECT COUNT(*) FROM stores",
            ),
            brief=Brief(goal="find any non-empty count"),
            termination=lambda results: any(
                r.rows and r.rows[0][0] > 0 for r in results
            ),
        )
        response = system.submit(probe)
        statuses = [o.status for o in response.outcomes]
        assert "terminated" in statuses
        assert statuses.count("ok") >= 1

    def test_termination_after_first_result_statuses(self, system):
        """A criterion satisfied by the first result leaves every later
        query with status 'terminated' (not silently dropped)."""
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
                "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
            ),
            # Pin execution order: the satisficer runs highest-priority
            # first, and the criterion fires on that first result.
            brief=Brief(priorities={0: 5.0, 1: 2.0, 2: 1.0}),
            termination=lambda results: len(results) >= 1,
        )
        response = system.submit(probe)
        statuses = [o.status for o in response.outcomes]
        assert statuses == ["ok", "terminated", "terminated"]
        for outcome in response.outcomes[1:]:
            assert outcome.result is None
            assert "termination criterion" in outcome.reason

    def test_termination_stops_work_accounting(self, system_db):
        """Terminated queries must not add rows_processed: the probe's
        bill equals the bill for its first query alone."""
        first_only = AgentFirstDataSystem(system_db)
        baseline = first_only.submit(Probe.sql("SELECT COUNT(*) FROM sales"))

        terminating = AgentFirstDataSystem(system_db)
        response = terminating.submit(
            Probe(
                queries=(
                    "SELECT COUNT(*) FROM sales",
                    "SELECT COUNT(*) FROM stores",
                    "SELECT id FROM stores",
                ),
                brief=Brief(priorities={0: 5.0, 1: 2.0, 2: 1.0}),
                termination=lambda results: len(results) >= 1,
            )
        )
        assert response.rows_processed == baseline.rows_processed

    def test_termination_criterion_error_is_ignored(self, system):
        def broken(results):
            raise RuntimeError("criterion bug")

        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
            ),
            termination=broken,
        )
        response = system.submit(probe)
        assert [o.status for o in response.outcomes] == ["ok", "ok"]

    def test_k_of_n_prunes_with_reason(self, system):
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",
                "SELECT COUNT(*) FROM stores",
            ),
            brief=Brief(goal="exact answer", complete_k_of_n=1),
        )
        response = system.submit(probe)
        statuses = sorted(o.status for o in response.outcomes)
        assert statuses == ["ok", "pruned"]
        pruned = next(o for o in response.outcomes if o.status == "pruned")
        assert "k-of-n" in pruned.reason
        assert pruned.result is None

    def test_semantic_prune_during_exploration(self, system):
        probe = Probe(
            queries=("SELECT city FROM stores",),
            brief=Brief(goal="explore zzqx flurbles telemetry"),
        )
        response = system.submit(probe)
        # Whatever the embedder decides, a pruned outcome must carry its
        # reason and no result; an executed one must carry rows.
        outcome = response.outcomes[0]
        if outcome.status == "pruned":
            assert "unrelated" in outcome.reason
            assert outcome.result is None
        else:
            assert outcome.result is not None

    def test_from_history_carries_no_new_work(self, system):
        system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        repeat = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        outcome = repeat.outcomes[0]
        assert outcome.status == "from_history"
        # The reused result object keeps its original stats, but the
        # response bills zero new engine work for it.
        assert repeat.rows_processed == 0
        assert not outcome.executed
        assert outcome.answered

    def test_from_history_then_termination_interaction(self, system):
        system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        probe = Probe(
            queries=(
                "SELECT COUNT(*) FROM sales",  # from history
                "SELECT COUNT(*) FROM stores",  # terminated before running
            ),
            brief=Brief(priorities={0: 5.0, 1: 1.0}),
            termination=lambda results: len(results) >= 1,
        )
        response = system.submit(probe)
        assert [o.status for o in response.outcomes] == [
            "from_history",
            "terminated",
        ]

    def test_semantic_search_attached(self, system):
        probe = Probe(
            queries=(),
            semantic_search="coffee products",
        )
        response = system.submit(probe)
        assert response.semantic_hits
        assert any(
            hit.location.table == "sales" for hit in response.semantic_hits
        )

    def test_rows_processed_accounted(self, system):
        response = system.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert response.rows_processed > 0


class TestSteering:
    def test_why_not_explains_empty_result(self, system):
        response = system.submit(
            Probe.sql("SELECT * FROM stores WHERE state = 'CA'", goal="final answer")
        )
        assert any("California" in hint for hint in response.steering)

    def test_join_discovery_in_exploration(self, system):
        response = system.submit(
            Probe.sql("SELECT store_id FROM sales", goal="explore the sales schema")
        )
        assert any("stores.id" in hint for hint in response.steering)

    def test_similar_query_pointer(self, system):
        system.submit(Probe.sql("SELECT city, state FROM stores"))
        response = system.submit(Probe.sql("SELECT state, city FROM stores"))
        assert any("equivalent" in hint for hint in response.steering)

    def test_batching_hint_after_sequential_probes(self, system):
        for _ in range(4):
            response = system.submit(
                Probe.sql("SELECT COUNT(*) FROM sales WHERE amount > 1")
            )
        assert any("batching" in hint for hint in response.steering)

    def test_steering_disabled(self, system_db):
        system = AgentFirstDataSystem(
            system_db, config=SystemConfig(enable_steering=False)
        )
        response = system.submit(
            Probe.sql("SELECT * FROM stores WHERE state = 'CA'")
        )
        assert response.steering == []

    def test_cost_warning_on_budget_overrun(self, system, system_db):
        system_db.insert_rows(
            "sales", [(100 + i, 1, "coffee", 1.0) for i in range(2000)]
        )
        probe = Probe(
            queries=("SELECT * FROM sales s1 JOIN sales s2 ON s1.id = s2.id",),
            brief=Brief(goal="exact", max_cost=10.0),
        )
        response = system.submit(probe)
        assert any("exceeds" in hint for hint in response.steering)


class TestMemoryIntegration:
    def test_solution_results_remembered(self, system):
        system.submit(
            Probe.sql("SELECT COUNT(*) FROM sales", goal="compute the exact answer")
        )
        artifacts = system.memory.artifacts_about("sales")
        assert any(a.kind is ArtifactKind.PROBE_RESULT for a in artifacts)

    def test_encoding_lessons_remembered(self, system):
        system.submit(
            Probe.sql("SELECT * FROM stores WHERE state = 'CA'", goal="final")
        )
        artifacts = system.memory.artifacts_about("stores")
        assert any(a.kind is ArtifactKind.COLUMN_ENCODING for a in artifacts)

    def test_goal_recalls_memory(self, system):
        system.submit(
            Probe.sql("SELECT * FROM stores WHERE state = 'CA'", goal="final")
        )
        response = system.submit(
            Probe.sql(
                "SELECT COUNT(*) FROM stores",
                goal="how are states encoded in stores",
            )
        )
        assert response.memory_hits

    def test_memory_disabled(self, system_db):
        system = AgentFirstDataSystem(
            system_db, config=SystemConfig(enable_memory=False)
        )
        system.submit(Probe.sql("SELECT COUNT(*) FROM sales", goal="exact answer"))
        assert len(system.memory) == 0

    def test_explicit_memory_queries(self, system):
        system.memory.remember(
            ArtifactKind.SCHEMA_NOTE,
            ("sales",),
            "sales.amount is in US dollars including tax",
            shared=True,
        )
        response = system.submit(
            Probe(queries=(), memory_queries=("what currency is amount",))
        )
        assert response.memory_hits
        assert "dollars" in response.memory_hits[0][0].text

    def test_probe_result_key_uses_stable_digest(self, system):
        sql = "SELECT COUNT(*) FROM sales"
        response = system.submit(Probe.sql(sql, goal="compute the exact answer"))
        keys = [
            artifact.subject
            for artifact in system.memory._artifacts.values()
            if artifact.kind is ArtifactKind.PROBE_RESULT
        ]
        expected = ("sales", f"turn{response.turn}q{stable_hash_int(sql, 16):04x}")
        assert expected in keys

    def test_probe_result_keys_reproducible_across_processes(self):
        """Python string ``hash`` is salted per process; the memory keys
        must not be. Run the same probe under two different
        ``PYTHONHASHSEED`` values and require identical artifact keys."""
        script = (
            "from repro.core import AgentFirstDataSystem, Probe\n"
            "from repro.db import Database\n"
            "from repro.memstore import ArtifactKind\n"
            "db = Database('m')\n"
            "db.execute('CREATE TABLE t (id INT, v FLOAT)')\n"
            "db.execute('INSERT INTO t VALUES (1, 2.0), (2, 3.5)')\n"
            "system = AgentFirstDataSystem(db)\n"
            "system.submit(Probe.sql('SELECT COUNT(*) FROM t',"
            " goal='compute the exact answer'))\n"
            "print(sorted(a.subject for a in system.memory._artifacts.values()"
            " if a.kind is ArtifactKind.PROBE_RESULT))\n"
        )
        repo_root = Path(__file__).resolve().parents[1]
        outputs = []
        for hash_seed in ("1", "271828"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = str(repo_root / "src")
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=repo_root,
                check=True,
            )
            outputs.append(completed.stdout.strip())
        assert outputs[0] == outputs[1]
        assert "turn1q" in outputs[0]


class TestResponseDescribe:
    def outcome(self, sql, index=0, status="ok"):
        return QueryOutcome(sql=sql, status=status, query_index=index)

    def test_short_sql_is_not_ellipsized(self):
        response = ProbeResponse(
            turn=3, outcomes=[self.outcome("SELECT COUNT(*) FROM sales")]
        )
        text = response.describe()
        assert "SELECT COUNT(*) FROM sales -> ok" in text
        assert "..." not in text

    def test_long_sql_is_truncated_with_ellipsis(self):
        long_sql = "SELECT " + ", ".join(f"col_{i}" for i in range(20)) + " FROM t"
        assert len(long_sql) > 60
        response = ProbeResponse(turn=1, outcomes=[self.outcome(long_sql)])
        text = response.describe()
        assert long_sql[:60] + "..." in text
        assert long_sql not in text

    def test_query_index_labels_reordered_outcomes(self):
        response = ProbeResponse(
            turn=2,
            outcomes=[
                self.outcome("SELECT COUNT(*) FROM stores", index=1),
                self.outcome("SELECT COUNT(*) FROM sales", index=0),
            ],
        )
        lines = response.describe().splitlines()
        assert lines[1].startswith("  - [1] ")
        assert lines[2].startswith("  - [0] ")


class TestBriefInference:
    def test_explicit_phase_wins_over_markers(self):
        brief = Brief(goal="explore the schema sample", phase=Phase.VALIDATION)
        assert brief.infer_phase() is Phase.VALIDATION

    def test_validation_marker_beats_exploration_votes(self):
        # Plenty of exploration evidence, but a single validation marker
        # decides the phase outright.
        brief = Brief(goal="verify the schema sample statistics we explored")
        assert brief.infer_phase() is Phase.VALIDATION

    def test_tie_between_exploration_and_solution_is_solution(self):
        # One exploration marker ("explore") vs one solution marker
        # ("final"): ties fall through to solution formulation.
        brief = Brief(goal="explore the final table")
        assert brief.infer_phase() is Phase.SOLUTION_FORMULATION

    def test_markers_in_notes_only(self):
        brief = Brief(goal="", notes="look around the schema first")
        assert brief.infer_phase() is Phase.METADATA_EXPLORATION

    def test_validation_marker_in_notes_only(self):
        brief = Brief(goal="", notes="double-check the totals")
        assert brief.infer_phase() is Phase.VALIDATION

    def test_empty_brief_defaults_to_solution(self):
        assert Brief().infer_phase() is Phase.SOLUTION_FORMULATION

    def test_repeated_markers_outvote_single_solution_marker(self):
        brief = Brief(goal="sample the schema, sample the statistics, answer")
        # exploration: sample x2 + schema + statistics = 4 > solution: 1.
        assert brief.infer_phase() is Phase.METADATA_EXPLORATION

    def test_priority_of_defaults_to_one(self):
        assert Brief().priority_of(0) == 1.0
        assert Brief().priority_of(7) == 1.0

    def test_priority_of_reads_table_and_falls_back(self):
        brief = Brief(priorities={1: 2.5, 2: 0.25})
        assert brief.priority_of(1) == 2.5
        assert brief.priority_of(2) == 0.25
        assert brief.priority_of(0) == 1.0


class TestMaterializationAdvisor:
    def test_recurring_join_suggested(self, system):
        sql = (
            "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
            " ON s.id = x.store_id GROUP BY s.city"
        )
        for _ in range(3):
            system.submit(Probe.sql(sql))
            system.optimizer.history.clear()  # force re-execution each turn
        suggestions = system.materialization_suggestions()
        assert suggestions
        assert suggestions[0][1] >= 3


class TestSteeringComponents:
    def test_why_not_no_finding_for_matching_predicate(self, system_db):
        diagnoser = WhyNotDiagnoser(system_db)
        plan = system_db.plan_select(
            "SELECT * FROM stores WHERE state = 'California'"
        )
        assert diagnoser.diagnose(plan) == []

    def test_why_not_close_match_suggestion(self, system_db):
        diagnoser = WhyNotDiagnoser(system_db)
        plan = system_db.plan_select(
            "SELECT * FROM stores WHERE city = 'berkely'"
        )
        findings = diagnoser.diagnose(plan)
        assert findings
        assert "Berkeley" in (findings[0].suggestion or "")

    def test_join_discovery_direct(self, system_db):
        discovery = JoinDiscovery(system_db)
        suggestions = discovery.related_tables("sales")
        assert suggestions
        assert suggestions[0].target_table == "stores"
        assert suggestions[0].value_overlap > 0.9

    def test_join_discovery_unknown_table(self, system_db):
        assert JoinDiscovery(system_db).related_tables("ghost") == []
