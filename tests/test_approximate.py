"""Tests for approximate execution (sampling) and the shared-work cache."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.engine.executor import SubplanCache


@pytest.fixture
def big_db() -> Database:
    db = Database("big")
    db.execute("CREATE TABLE events (id INT, kind TEXT, value FLOAT)")
    rows = []
    for i in range(2000):
        kind = "a" if i % 4 else "b"
        rows.append(f"({i}, '{kind}', {float(i % 100)})")
    db.execute("INSERT INTO events VALUES " + ", ".join(rows))
    return db


class TestSampling:
    def test_exact_by_default(self, big_db):
        result = big_db.execute("SELECT COUNT(*) FROM events")
        assert not result.is_approximate
        assert result.first_value() == 2000

    def test_sampled_count_scales_up(self, big_db):
        result = big_db.execute("SELECT COUNT(*) FROM events", sample_rate=0.2)
        assert result.is_approximate
        estimate = result.first_value()
        assert 1500 <= estimate <= 2500  # within ~5 sigma of 2000

    def test_sampled_count_reports_error(self, big_db):
        result = big_db.execute("SELECT COUNT(*) AS n FROM events", sample_rate=0.2)
        assert "__agg0" in result.estimate_errors or result.estimate_errors
        error = next(iter(result.estimate_errors.values()))
        assert error > 0

    def test_sampled_sum_near_truth(self, big_db):
        exact = big_db.execute("SELECT SUM(value) FROM events").first_value()
        approx = big_db.execute(
            "SELECT SUM(value) FROM events", sample_rate=0.3
        ).first_value()
        assert approx == pytest.approx(exact, rel=0.2)

    def test_sampled_avg_unscaled(self, big_db):
        exact = big_db.execute("SELECT AVG(value) FROM events").first_value()
        approx = big_db.execute(
            "SELECT AVG(value) FROM events", sample_rate=0.3
        ).first_value()
        assert approx == pytest.approx(exact, rel=0.15)

    def test_count_distinct_not_scaled(self, big_db):
        approx = big_db.execute(
            "SELECT COUNT(DISTINCT kind) FROM events", sample_rate=0.5
        ).first_value()
        assert approx <= 2

    def test_sampling_deterministic_per_seed(self, big_db):
        first = big_db.execute(
            "SELECT COUNT(*) FROM events", sample_rate=0.2, sample_seed=7
        ).first_value()
        second = big_db.execute(
            "SELECT COUNT(*) FROM events", sample_rate=0.2, sample_seed=7
        ).first_value()
        assert first == second

    def test_different_seeds_differ(self, big_db):
        values = {
            big_db.execute(
                "SELECT COUNT(*) FROM events", sample_rate=0.2, sample_seed=seed
            ).first_value()
            for seed in range(5)
        }
        assert len(values) > 1

    def test_sampled_scan_fewer_rows(self, big_db):
        full = big_db.execute("SELECT id FROM events")
        sampled = big_db.execute("SELECT id FROM events", sample_rate=0.1)
        assert sampled.row_count < full.row_count * 0.3

    def test_sampled_group_by(self, big_db):
        result = big_db.execute(
            "SELECT kind, COUNT(*) AS n FROM events GROUP BY kind", sample_rate=0.4
        )
        counts = dict(result.rows)
        assert counts.get("a", 0) > counts.get("b", 0)


class TestSubplanCache:
    def test_identical_query_hits_cache(self, big_db):
        cache = SubplanCache()
        first = big_db.execute("SELECT COUNT(*) FROM events WHERE kind = 'a'", cache=cache)
        second = big_db.execute("SELECT COUNT(*) FROM events WHERE kind = 'a'", cache=cache)
        assert first.rows == second.rows
        assert second.stats.cache_hits > 0
        assert second.stats.rows_scanned == 0  # never touched the table

    def test_alias_variant_hits_cache(self, big_db):
        cache = SubplanCache()
        big_db.execute("SELECT COUNT(*) FROM events WHERE kind = 'a'", cache=cache)
        result = big_db.execute(
            "SELECT COUNT(*) FROM events e WHERE e.kind = 'a'", cache=cache
        )
        assert result.stats.cache_hits > 0

    def test_shared_subplan_across_different_queries(self, big_db):
        cache = SubplanCache()
        big_db.execute(
            "SELECT kind, COUNT(*) FROM events WHERE value > 50 GROUP BY kind",
            cache=cache,
        )
        result = big_db.execute(
            "SELECT kind, SUM(value) FROM events WHERE value > 50 GROUP BY kind",
            cache=cache,
        )
        # The filtered scan (Filter over Scan) is shared even though the
        # aggregates differ.
        assert result.stats.cache_hits > 0

    def test_projection_order_not_conflated(self, big_db):
        cache = SubplanCache()
        a = big_db.execute("SELECT id, kind FROM events WHERE id < 5", cache=cache)
        b = big_db.execute("SELECT kind, id FROM events WHERE id < 5", cache=cache)
        assert a.columns == ["id", "kind"]
        assert b.columns == ["kind", "id"]
        assert [r[::-1] for r in a.rows] == b.rows

    def test_different_sample_rates_not_conflated(self, big_db):
        cache = SubplanCache()
        exact = big_db.execute("SELECT COUNT(*) FROM events", cache=cache)
        approx = big_db.execute("SELECT COUNT(*) FROM events", sample_rate=0.1, cache=cache)
        assert exact.first_value() == 2000
        assert approx.first_value() != 2000 or approx.is_approximate

    def test_cache_eviction_bounded(self, big_db):
        cache = SubplanCache(max_entries=4)
        for i in range(10):
            big_db.execute(f"SELECT COUNT(*) FROM events WHERE id = {i}", cache=cache)
        assert len(cache) <= 4

    def test_invalidate_clears(self, big_db):
        cache = SubplanCache()
        big_db.execute("SELECT COUNT(*) FROM events", cache=cache)
        cache.invalidate()
        assert len(cache) == 0

    def test_cache_work_savings(self, big_db):
        cache = SubplanCache()
        first = big_db.execute(
            "SELECT kind, COUNT(*) FROM events WHERE value > 10 GROUP BY kind",
            cache=cache,
        )
        second = big_db.execute(
            "SELECT kind, COUNT(*) FROM events WHERE value > 10 GROUP BY kind",
            cache=cache,
        )
        assert second.stats.rows_processed < first.stats.rows_processed * 0.1
