"""Paper-shape regression tests.

These assert the *qualitative* claims of every reproduced figure/table
(direction, ordering, rough magnitude) on reduced sizes, so that changes to
the simulator calibration that would break the reproduction fail CI. The
benches run the full-size versions.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    run_branching_experiment,
    run_fig1a,
    run_fig1b,
    run_fig2,
    run_fig3,
    run_memory_ablation,
    run_mqo_ablation,
    run_steering_ablation,
    run_table1,
)


@pytest.fixture(scope="module")
def fig1a():
    return run_fig1a(seed=1, n_tasks=24, k_values=(1, 10, 50))


@pytest.fixture(scope="module")
def fig1b():
    return run_fig1b(seed=1, n_tasks=24, turn_budgets=(1, 4, 7), repetitions=2)


class TestFig1aShape:
    def test_success_rises_with_k(self, fig1a):
        for series in fig1a.series.values():
            assert series[50] > series[1]

    def test_saturates_below_certainty(self, fig1a):
        for series in fig1a.series.values():
            assert series[50] < 0.95

    def test_magnitudes_in_paper_band(self, fig1a):
        for series in fig1a.series.values():
            assert 0.3 < series[1] < 0.75
            assert 0.5 < series[50] < 0.9


class TestFig1bShape:
    def test_success_rises_with_turns(self, fig1b):
        for series in fig1b.series.values():
            assert series[7] > series[1] + 0.1

    def test_turn1_is_weak(self, fig1b):
        for series in fig1b.series.values():
            assert series[1] < 0.5

    def test_sequential_below_parallel_ceiling(self, fig1a, fig1b):
        for name, series in fig1b.series.items():
            assert series[7] <= fig1a.series[name][50] + 0.15


class TestFig2Shape:
    @pytest.fixture(scope="class")
    def fig2(self):
        return run_fig2(seed=1, n_tasks=8, attempts_per_task=30)

    def test_small_subplans_massively_redundant(self, fig2):
        proportions = {size: p for size, _, _, p in fig2.by_size}
        assert proportions[1] < 0.1
        assert proportions[2] < 0.2

    def test_unique_proportion_grows_with_size(self, fig2):
        proportions = [p for _, _, _, p in fig2.by_size]
        assert proportions[-1] > proportions[0]

    def test_scans_dedupe_hardest(self, fig2):
        by_op = {code: p for code, _, _, p in fig2.by_operator}
        assert by_op["TS"] == min(by_op.values())

    def test_all_operator_codes_present(self, fig2):
        codes = {code for code, _, _, _ in fig2.by_operator}
        assert {"PR", "TS", "FI", "UA"} <= codes


class TestFig3Shape:
    @pytest.fixture(scope="class")
    def fig3(self):
        return run_fig3(seed=1, n_tasks=12, repetitions=2)

    @staticmethod
    def center(bins):
        total = sum(bins)
        return sum(i * v for i, v in enumerate(bins)) / total if total else 0.0

    def test_exploration_precedes_attempts(self, fig3):
        com = {name: self.center(bins) for name, bins in fig3.heatmap.items()}
        assert com["exploring tables"] < com["attempting entire query"]
        assert com["exploring specific columns"] < com["attempting entire query"]

    def test_phases_overlap(self, fig3):
        tables = fig3.heatmap["exploring tables"]
        attempts = fig3.heatmap["attempting entire query"]
        assert sum(tables[len(tables) // 2 :]) > 0  # exploration persists late
        assert sum(attempts[: len(attempts) // 2]) > 0  # attempts start early

    def test_rows_normalised(self, fig3):
        for bins in fig3.heatmap.values():
            assert max(bins) == pytest.approx(1.0)


class TestTable1Shape:
    @pytest.fixture(scope="class")
    def table1(self):
        return run_table1(seed=1, n_tasks=12, repetitions=2)

    def test_hints_reduce_every_activity(self, table1):
        for _, no_hints, with_hints, reduction in table1.rows:
            assert with_hints <= no_hints
            assert reduction <= 0

    def test_counts_in_paper_ballpark(self, table1):
        totals = {activity: no_hints for activity, no_hints, _, _ in table1.rows}
        assert 8 < totals["all SQL queries"] < 20
        assert totals["attempting entire query"] < totals["attempting part of the query"]

    def test_overall_reduction_material(self, table1):
        reductions = {a: r for a, _, _, r in table1.rows}
        assert reductions["all SQL queries"] < -5


class TestBranchingShape:
    def test_agents_dominate_branch_activity(self):
        result = run_branching_experiment(seed=1, sessions=6)
        assert result.branch_ratio > 5
        assert result.rollback_ratio > 10
        assert result.cow_shared_fraction > 0.5


class TestAblationShapes:
    def test_mqo_saves_most_work(self):
        result = run_mqo_ablation(seed=1, n_tasks=3, attempts_per_task=20)
        assert result.duplicate_fraction > 0.4
        assert result.work_saved > 0.4

    def test_memory_saves_on_repetition(self):
        result = run_memory_ablation(seed=1, n_tasks=4, repeats=3)
        assert result.history_answers > 0
        assert result.work_saved > 0.3

    def test_steering_saves_probes(self):
        result = run_steering_ablation(seed=1, n_tasks=6)
        assert result.probes_with_steering <= result.probes_without_steering
