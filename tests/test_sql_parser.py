"""Tests for the SQL lexer and parser."""

from __future__ import annotations

import pytest

from repro.errors import ParseError, TokenizeError
from repro.sql import nodes
from repro.sql.lexer import TokenType, tokenize
from repro.sql.parser import parse_expression, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select FROM Where")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_identifiers_preserve_case(self):
        (token, _) = tokenize("MyTable")
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "MyTable"

    def test_quoted_identifier_defeats_keyword(self):
        (token, _) = tokenize('"select"')
        assert token.type is TokenType.IDENTIFIER
        assert token.value == "select"

    def test_string_escape(self):
        (token, _) = tokenize("'it''s'")
        assert token.value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(TokenizeError):
            tokenize("'oops")

    def test_numbers(self):
        values = [t.value for t in tokenize("1 2.5 1e3 2.5E-2")[:-1]]
        assert values == ["1", "2.5", "1e3", "2.5E-2"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n 1 /* block */ + 2")
        rendered = [t.value for t in tokens[:-1]]
        assert rendered == ["SELECT", "1", "+", "2"]

    def test_multi_char_operators(self):
        rendered = [t.value for t in tokenize("a <> b <= c || d")[:-1]]
        assert "<>" in rendered and "<=" in rendered and "||" in rendered

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError):
            tokenize("SELECT @")


class TestExpressionParsing:
    def test_precedence_arithmetic(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, nodes.Binary) and expr.op == "+"
        assert isinstance(expr.right, nodes.Binary) and expr.right.op == "*"

    def test_precedence_and_or(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, nodes.Binary) and expr.op == "OR"

    def test_not_binds_tighter_than_and(self):
        expr = parse_expression("NOT a AND b")
        assert isinstance(expr, nodes.Binary) and expr.op == "AND"
        assert isinstance(expr.left, nodes.Unary) and expr.left.op == "NOT"

    def test_unary_minus_folds_literal(self):
        expr = parse_expression("-5")
        assert expr == nodes.Literal(-5)

    def test_between(self):
        expr = parse_expression("x BETWEEN 1 AND 10")
        assert isinstance(expr, nodes.Between)

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 10")
        assert isinstance(expr, nodes.Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("state IN ('CA', 'WA')")
        assert isinstance(expr, nodes.InList)
        assert len(expr.items) == 2

    def test_in_subquery(self):
        expr = parse_expression("id IN (SELECT id FROM t)")
        assert isinstance(expr, nodes.InSubquery)

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), nodes.IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, nodes.IsNull) and expr.negated

    def test_like_and_not_like(self):
        expr = parse_expression("name NOT LIKE 'a%'")
        assert isinstance(expr, nodes.Binary) and expr.op == "NOT LIKE"

    def test_case_expression(self):
        expr = parse_expression("CASE WHEN x > 0 THEN 'pos' ELSE 'neg' END")
        assert isinstance(expr, nodes.Case)
        assert expr.else_result == nodes.Literal("neg")

    def test_cast(self):
        expr = parse_expression("CAST(x AS INT)")
        assert isinstance(expr, nodes.Cast) and expr.type_name == "INT"

    def test_function_call_distinct(self):
        expr = parse_expression("COUNT(DISTINCT city)")
        assert isinstance(expr, nodes.FuncCall) and expr.distinct

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, nodes.FuncCall)
        assert isinstance(expr.args[0], nodes.Star)

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert expr == nodes.ColumnRef(column="col", table="t")

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, nodes.Exists)

    def test_string_concat_literal(self):
        expr = parse_expression("'a' || 'b'")
        assert isinstance(expr, nodes.Binary) and expr.op == "||"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 garbage ,")

    def test_sql_roundtrip(self):
        text = "((a.x = 3) AND (b.y LIKE 'z%'))"
        assert parse_expression(text).sql() == text


class TestSelectParsing:
    def test_minimal(self):
        statement = parse_statement("SELECT 1")
        assert isinstance(statement, nodes.Select)
        assert statement.from_clause is None

    def test_star(self):
        statement = parse_statement("SELECT * FROM t")
        assert isinstance(statement.items[0].expr, nodes.Star)

    def test_table_star(self):
        statement = parse_statement("SELECT t.* FROM t")
        star = statement.items[0].expr
        assert isinstance(star, nodes.Star) and star.table == "t"

    def test_aliases(self):
        statement = parse_statement("SELECT a AS x, b y FROM t AS u")
        assert statement.items[0].alias == "x"
        assert statement.items[1].alias == "y"
        assert statement.from_clause.alias == "u"

    def test_join_kinds(self):
        statement = parse_statement(
            "SELECT * FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id"
        )
        outer = statement.from_clause
        assert isinstance(outer, nodes.Join) and outer.kind == "LEFT"
        assert isinstance(outer.left, nodes.Join) and outer.left.kind == "INNER"

    def test_cross_join(self):
        statement = parse_statement("SELECT * FROM a CROSS JOIN b")
        assert statement.from_clause.kind == "CROSS"
        assert statement.from_clause.condition is None

    def test_subquery_in_from(self):
        statement = parse_statement("SELECT x FROM (SELECT a AS x FROM t) AS sub")
        assert isinstance(statement.from_clause, nodes.SubqueryRef)

    def test_group_by_having(self):
        statement = parse_statement(
            "SELECT state, COUNT(*) FROM t GROUP BY state HAVING COUNT(*) > 2"
        )
        assert len(statement.group_by) == 1
        assert statement.having is not None

    def test_order_limit_offset(self):
        statement = parse_statement("SELECT a FROM t ORDER BY a DESC LIMIT 5 OFFSET 2")
        assert not statement.order_by[0].ascending
        assert statement.limit == 5
        assert statement.offset == 2

    def test_distinct(self):
        assert parse_statement("SELECT DISTINCT a FROM t").distinct

    def test_qualified_table_name(self):
        statement = parse_statement("SELECT * FROM information_schema.tables")
        assert statement.from_clause.name == "information_schema.tables"

    def test_semicolon_tolerated(self):
        parse_statement("SELECT 1;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT 1 SELECT 2")

    def test_missing_from_table_rejected(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT a FROM WHERE x = 1")

    def test_error_mentions_context(self):
        with pytest.raises(ParseError) as excinfo:
            parse_statement("SELECT a FROM t WHERE")
        assert "expected an expression" in str(excinfo.value)


class TestOtherStatements:
    def test_create_table(self):
        statement = parse_statement(
            "CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL, score FLOAT)"
        )
        assert isinstance(statement, nodes.CreateTable)
        assert statement.columns[0].primary_key
        assert statement.columns[1].not_null
        assert not statement.columns[2].not_null

    def test_create_if_not_exists(self):
        statement = parse_statement("CREATE TABLE IF NOT EXISTS t (id INT)")
        assert statement.if_not_exists

    def test_insert_values(self):
        statement = parse_statement("INSERT INTO t VALUES (1, 'a'), (2, 'b')")
        assert isinstance(statement, nodes.Insert)
        assert len(statement.rows) == 2

    def test_insert_with_columns(self):
        statement = parse_statement("INSERT INTO t (id, name) VALUES (1, 'a')")
        assert statement.columns == ("id", "name")

    def test_insert_select(self):
        statement = parse_statement("INSERT INTO t SELECT * FROM s")
        assert statement.select is not None

    def test_update(self):
        statement = parse_statement("UPDATE t SET a = 1, b = b + 1 WHERE id = 3")
        assert isinstance(statement, nodes.Update)
        assert len(statement.assignments) == 2

    def test_delete(self):
        statement = parse_statement("DELETE FROM t WHERE x < 0")
        assert isinstance(statement, nodes.Delete)

    def test_drop_table(self):
        statement = parse_statement("DROP TABLE IF EXISTS t")
        assert isinstance(statement, nodes.DropTable) and statement.if_exists

    def test_select_sql_roundtrip_reparses(self):
        text = (
            "SELECT s.state, COUNT(*) AS n FROM stores AS s "
            "JOIN sales ON s.id = sales.store_id "
            "WHERE s.state <> 'TX' GROUP BY s.state "
            "ORDER BY n DESC LIMIT 3"
        )
        statement = parse_statement(text)
        assert parse_statement(statement.sql()) == statement
