"""Log-fed read replicas: bounded staleness, legible hints, gateway spill.

The contract: a replica only answers a probe whose brief *declares* a
staleness tolerance, never exceeds it (checked after catching up on the
log), and every replica-served response carries an explicit "served by
read replica ...: staleness N ≤ M versions" steering hint — degraded
service must be legible to the caller. Everything else (DML, beyond-SQL
requests, information-schema reads, termination criteria) falls through
to the primary untouched.
"""

from __future__ import annotations

import re

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.core.gateway import merge_brief
from repro.db import Database
from repro.txn import ReadReplica, ReplicaPool
from test_maintenance import JOIN, build_db

COUNT_SALES = "SELECT COUNT(*) FROM sales"


def make_system(tmp_path, replicas: int = 1, **config_kwargs):
    # wal_dir is explicit (not attach_wal) so the REPRO_WAL=1 CI leg,
    # which auto-attaches a temp log to every bare Database, composes.
    db = build_db(wal_dir=str(tmp_path / "wal"))
    config = SystemConfig(read_replicas=replicas, **config_kwargs)
    return AgentFirstDataSystem(db, config=config)


def bounded(sql: str = COUNT_SALES, tolerance: int = 10, agent: str = "r") -> Probe:
    return Probe(
        queries=(sql,), brief=Brief(max_staleness=tolerance), agent_id=agent
    )


class TestReadReplica:
    def test_served_response_carries_staleness_hint(self, tmp_path):
        system = make_system(tmp_path)
        try:
            response = system.replicas.try_serve(bounded(tolerance=5))
            assert response is not None
            assert response.outcomes[0].status == "ok"
            assert response.outcomes[0].result.rows == system.db.execute(
                COUNT_SALES
            ).rows
            (hint,) = [s for s in response.steering if "replica" in s]
            match = re.fullmatch(
                r"served by read replica 'replica-0':"
                r" staleness (\d+) ≤ 5 versions",
                hint,
            )
            assert match is not None
            assert int(match.group(1)) <= 5
        finally:
            system.close()

    def test_staleness_bound_enforced_without_catch_up(self, tmp_path):
        system = make_system(tmp_path)
        try:
            replica = system.replicas.replicas[0]
            replica.catch_up()
            stale_rows = system.db.execute(COUNT_SALES).rows
            for i in range(3):
                system.db.execute(
                    f"INSERT INTO sales VALUES ({9100 + i}, 1, 'tea', 1.0)"
                )
            lag = replica.staleness()
            assert lag >= 3
            # Too stale for the brief: defer to the primary, burn no turn.
            turn_before = system.turn
            assert (
                replica.serve(
                    bounded(tolerance=lag - 1),
                    lag - 1,
                    system._next_replica_turn,
                    catch_up=False,
                )
                is None
            )
            assert system.turn == turn_before
            # Within tolerance: serves the admittedly-stale image and says so.
            response = replica.serve(
                bounded(tolerance=lag),
                lag,
                system._next_replica_turn,
                catch_up=False,
            )
            assert response is not None
            assert response.outcomes[0].result.rows == stale_rows
            assert f"staleness {lag} ≤ {lag}" in response.steering[0]
        finally:
            system.close()

    def test_catch_up_serves_fresh_rows_at_zero_tolerance(self, tmp_path):
        system = make_system(tmp_path)
        try:
            for i in range(4):
                system.db.execute(
                    f"INSERT INTO sales VALUES ({9200 + i}, 2, 'tea', 2.0)"
                )
            response = system.replicas.try_serve(bounded(tolerance=0))
            assert response is not None
            assert response.outcomes[0].result.rows == system.db.execute(
                COUNT_SALES
            ).rows
        finally:
            system.close()

    def test_reseeds_after_checkpoint_prunes_its_horizon(self, tmp_path):
        system = make_system(tmp_path)
        try:
            replica = system.replicas.replicas[0]
            replica.catch_up()
            for i in range(6):
                system.db.execute(
                    f"INSERT INTO sales VALUES ({9300 + i}, 3, 'tea', 3.0)"
                )
            system.db.checkpoint()  # prunes every segment the replica was on
            assert replica.catch_up() >= 0  # reseed path, not an exception
            assert replica.staleness() == 0
            assert replica.catalog.version() == system.db.catalog.version()
        finally:
            system.close()


class TestEligibility:
    def probes_that_fall_through(self):
        return [
            Probe(queries=(COUNT_SALES,)),  # no declared tolerance
            Probe(queries=(), brief=Brief(max_staleness=5)),
            Probe(
                queries=(COUNT_SALES,),
                brief=Brief(max_staleness=5),
                semantic_search="coffee",
            ),
            Probe(
                queries=(COUNT_SALES,),
                brief=Brief(max_staleness=5),
                memory_queries=("last plan",),
            ),
            Probe(
                queries=(COUNT_SALES,),
                brief=Brief(max_staleness=5),
                termination=lambda results: True,
            ),
        ]

    def test_undeclared_or_beyond_sql_probes_stay_on_primary(self, tmp_path):
        system = make_system(tmp_path)
        try:
            pool = system.replicas
            for probe in self.probes_that_fall_through():
                assert not pool.eligible(probe)
                assert pool.try_serve(probe) is None
            # Ineligible probes are not even counted as declined: the pool
            # never looked at them.
            assert pool.stats()["probes_declined"] == 0
        finally:
            system.close()

    def test_info_schema_and_dml_decline_at_serve_time(self, tmp_path):
        system = make_system(tmp_path)
        try:
            pool = system.replicas
            info = bounded("SELECT * FROM information_schema_tables")
            assert pool.eligible(info)  # looks like a plain read...
            assert pool.try_serve(info) is None  # ...but needs the facade
            dml = bounded("INSERT INTO sales VALUES (1, 1, 'x', 0.0)")
            assert pool.try_serve(dml) is None
            assert pool.stats()["probes_declined"] == 2
        finally:
            system.close()

    def test_session_brief_defaults_carry_max_staleness(self):
        merged = merge_brief(Brief(), Brief(max_staleness=7))
        assert merged.max_staleness == 7
        # The probe's own declaration wins over the session default.
        assert merge_brief(Brief(max_staleness=2), Brief(max_staleness=7)).max_staleness == 2
        assert merge_brief(Brief(max_staleness=0), Brief(max_staleness=7)).max_staleness == 0


class TestGatewaySpill:
    def test_loaded_gateway_offloads_with_distinct_turns(self, tmp_path):
        system = make_system(
            tmp_path, replicas=2, gateway_max_batch=2, gateway_max_wait=0.01
        )
        try:
            tickets = [
                system.gateway.submit(bounded(tolerance=10, agent=f"a{i}"))
                for i in range(8)
            ]
            system.gateway.flush()
            responses = [t.result(timeout=30.0) for t in tickets]
            offloaded = [
                r
                for r in responses
                if any("read replica" in s for s in r.steering)
            ]
            assert system.gateway.stats()["probes_offloaded"] == len(offloaded)
            assert len(offloaded) > 0
            for response in responses:
                assert response.outcomes[0].status == "ok"
                assert response.outcomes[0].result.rows == [(600,)]
            # Replica turns are reserved under the primary's lock: no
            # collisions with window turns, no gaps in admission order.
            turns = sorted(r.turn for r in responses)
            assert turns == list(range(1, 9))
        finally:
            system.close()

    def test_unloaded_gateway_keeps_probes_on_primary(self, tmp_path):
        system = make_system(
            tmp_path, replicas=1, gateway_max_batch=8, gateway_max_wait=0.01
        )
        try:
            ticket = system.gateway.submit(bounded(tolerance=10))
            system.gateway.flush()
            response = ticket.result(timeout=30.0)
            # Eligible, but the primary was idle: fresher answer, no spill.
            assert not any("read replica" in s for s in response.steering)
            assert system.gateway.stats()["probes_offloaded"] == 0
        finally:
            system.close()

    def test_replica_pool_disabled_without_config(self):
        system = AgentFirstDataSystem(build_db())
        try:
            assert system.replicas is None  # no WAL, no replicas
        finally:
            system.close()
