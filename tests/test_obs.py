"""Observability layer tests: traces, metrics, slow log, differential.

Three contracts pinned here:

* **answers never change** — tracing on vs off is byte-identical on
  rows, statuses, steering, and ``stats()`` keys, across worker counts
  1/8 × thread/process dispatch × row/columnar engines;
* **completeness** — every traced served probe's tree carries a gateway
  span, a scheduler span, and at least one engine span (``node:*`` /
  ``engine:*``), including across the process-dispatch pickle seam
  (worker subtrees re-parented onto the coordinator's clock) and the
  cross-shard scatter fan-out;
* **compatibility** — the migrated ``stats()`` dicts keep their exact
  keys and values while ``system.metrics()`` exposes the same counters
  as one registry with JSON and Prometheus renderers.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.core.gateway import merge_brief
from repro.obs import trace as obs_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricAttr,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.slowlog import SlowProbeEntry, SlowProbeLog, resolve_slow_probe_ms
from repro.obs.trace import (
    Span,
    Trace,
    child_span,
    current_span,
    ensure_probe_trace,
    probe_trace,
    reparent,
    resolve_trace_enabled,
    trace_wanted,
    use_span,
)
from repro.qos import QosConfig
from repro.shard import ShardedSystem
from test_scheduler import (
    SHARED_JOIN,
    assert_same_outcomes,
    build_db,
    overlapping_probes,
)
from test_shard import PARTITION, build_tenant_db


@pytest.fixture(autouse=True)
def _no_ambient_trace_env(monkeypatch):
    """Tests control tracing explicitly; CI's REPRO_TRACE leg must not
    flip the untraced halves of the differentials below."""
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_SLOW_PROBE_MS", raising=False)


def traced_probes(n: int) -> list[Probe]:
    """The scheduler corpus, opted into tracing probe-by-probe."""
    probes = []
    for agent in range(n):
        probes.append(
            Probe(
                queries=(
                    SHARED_JOIN,
                    f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + agent % 2}",
                ),
                brief=Brief(goal="compute the exact answer", trace=True),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


def span_names(trace: Trace) -> list[str]:
    return [span.name for span in trace.spans()]


def assert_complete(trace: Trace) -> None:
    """The 100%-completeness predicate ``bench_obs`` also asserts."""
    names = span_names(trace)
    assert any(n.startswith("gateway:") for n in names), names
    assert any(n.startswith("scheduler:") for n in names), names
    assert any(n.startswith(("node:", "engine:")) for n in names), names


# -- span / trace primitives ---------------------------------------------------


class TestSpanPrimitives:
    def test_tree_construction_and_walk_order(self):
        root = Span("probe", start=10.0)
        a = root.child("gateway:queued", start=10.0)
        a.finish(end=10.5)
        b = root.child("scheduler:batch", start=10.5, workers=2)
        b.child("node:Scan", start=10.6).finish(end=10.7)
        b.finish(end=11.0)
        root.finish(end=11.0)
        assert [s.name for s in root.walk()] == [
            "probe",
            "gateway:queued",
            "scheduler:batch",
            "node:Scan",
        ]
        assert b.attrs == {"workers": 2}
        assert root.find("node:") == [b.children[0]]
        assert a.duration_ms == pytest.approx(500.0)

    def test_finish_is_idempotent(self):
        span = Span("probe", start=0.0)
        span.finish(end=1.0)
        span.finish(end=99.0)  # second finish must not move the end
        assert span.end == 1.0

    def test_note_merges_attrs(self):
        span = Span("x")
        span.note(rows=3).note(cache="hit")
        assert span.attrs == {"rows": 3, "cache": "hit"}

    def test_shift_translates_whole_subtree(self):
        root = Span("unit", start=100.0)
        root.child("node:Scan", start=100.2).finish(end=100.4)
        root.finish(end=100.5)
        root.shift(-100.0)
        assert root.start == pytest.approx(0.0)
        assert root.children[0].start == pytest.approx(0.2)
        assert root.children[0].end == pytest.approx(0.4)
        # Durations are invariant under translation.
        assert root.children[0].duration_ms == pytest.approx(200.0)

    def test_to_dict_round_trips_structure(self):
        root = Span("probe", start=0.0)
        root.child("node:Scan", start=0.1, rows=9).finish(end=0.2)
        root.finish(end=0.3)
        payload = root.to_dict()
        assert payload["name"] == "probe"
        assert payload["children"][0]["attrs"] == {"rows": 9}
        assert payload["children"][0]["duration_ms"] == pytest.approx(100.0)


class TestChromeExport:
    def build(self) -> Trace:
        trace = Trace(agent_id="a-1")
        trace.root.start = 5.0
        child = trace.root.child("node:Scan", start=5.001, rows=10)
        child.finish(end=5.002)
        trace.root.finish(end=5.010)
        return trace

    def test_complete_events_relative_microseconds(self):
        chrome = self.build().to_chrome()
        assert chrome["displayTimeUnit"] == "ms"
        events = chrome["traceEvents"]
        assert [e["name"] for e in events] == ["probe", "node:Scan"]
        for event in events:
            assert event["ph"] == "X"
            assert event["pid"] == 1 and event["tid"] == 1
        # Timestamps are µs relative to the trace origin.
        assert events[0]["ts"] == pytest.approx(0.0)
        assert events[0]["dur"] == pytest.approx(10_000.0)
        assert events[1]["ts"] == pytest.approx(1_000.0)
        assert events[1]["dur"] == pytest.approx(1_000.0)
        assert events[1]["args"] == {"rows": 10}

    def test_json_export_is_loadable(self):
        parsed = json.loads(self.build().to_chrome_json())
        assert parsed["traceEvents"][0]["args"] == {"agent_id": "a-1"}

    def test_unfinished_span_exports_zero_duration(self):
        trace = Trace()
        trace.root.child("node:Scan")  # never finished
        events = trace.to_chrome()["traceEvents"]
        assert events[1]["dur"] == 0.0


class TestReparent:
    def test_worker_subtree_lands_on_parent_clock(self):
        # The coordinator's unit span and a worker subtree timed on a
        # clock with an unrelated (here: much larger) zero point.
        parent = Span("speculate:unit", start=50.0)
        worker = Span("speculation:worker", start=9_000.0)
        worker.child("node:Scan", start=9_000.3).finish(end=9_000.7)
        worker.finish(end=9_001.0)
        grafted = reparent(parent, worker)
        assert grafted is worker
        assert parent.children == [worker]
        assert worker.start == pytest.approx(50.0)
        assert worker.end == pytest.approx(51.0)
        assert worker.children[0].start == pytest.approx(50.3)
        # Intra-worker durations survive the clock translation exactly.
        assert worker.children[0].duration_ms == pytest.approx(400.0)


class TestAmbientContext:
    def test_default_is_none(self):
        assert current_span() is None

    def test_use_span_sets_and_restores(self):
        span = Span("probe")
        with use_span(span) as active:
            assert active is span
            assert current_span() is span
        assert current_span() is None

    def test_use_span_none_is_a_no_op(self):
        with use_span(None) as active:
            assert active is None
            assert current_span() is None

    def test_child_span_without_ambient_yields_none(self):
        with child_span("node:Scan") as span:
            assert span is None

    def test_child_span_nests_and_finishes(self):
        root = Span("probe")
        with use_span(root):
            with child_span("node:Scan", rows=3) as span:
                assert current_span() is span
            assert span.end is not None
            assert span.attrs == {"rows": 3}
        assert root.children == [span]

    def test_disabled_short_circuits(self, monkeypatch):
        root = Span("probe")
        with use_span(root):
            monkeypatch.setattr(obs_trace, "DISABLED", True)
            assert current_span() is None
            with child_span("node:Scan") as span:
                assert span is None
        assert root.children == []


class TestTraceWanted:
    def test_env_off_by_default(self):
        assert resolve_trace_enabled() is False
        assert trace_wanted(Brief()) is False

    def test_repro_trace_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert resolve_trace_enabled() is True
        assert trace_wanted(Brief()) is True
        assert trace_wanted(None) is True

    def test_slow_probe_threshold_implies_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PROBE_MS", "5")
        assert resolve_trace_enabled() is True

    def test_explicit_brief_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert trace_wanted(Brief(trace=False)) is False
        monkeypatch.delenv("REPRO_TRACE")
        assert trace_wanted(Brief(trace=True)) is True

    def test_disabled_beats_everything(self, monkeypatch):
        monkeypatch.setattr(obs_trace, "DISABLED", True)
        assert trace_wanted(Brief(trace=True)) is False

    def test_ensure_probe_trace_creates_once(self):
        probe = Probe(queries=("SELECT 1",), brief=Brief(trace=True))
        assert probe_trace(probe) is None  # never creates
        trace = ensure_probe_trace(probe)
        assert trace is not None
        assert trace.root.attrs["agent_id"] == probe.agent_id
        assert ensure_probe_trace(probe) is trace  # idempotent
        assert probe_trace(probe) is trace

    def test_ensure_probe_trace_respects_opt_out(self):
        probe = Probe(queries=("SELECT 1",), brief=Brief())
        assert ensure_probe_trace(probe) is None


# -- metrics primitives --------------------------------------------------------


class TestMetricsPrimitives:
    def test_counter_inc_and_labels(self):
        counter = Counter("hits_total", labelnames=("lane",))
        counter.inc(lane="bulk")
        counter.inc(2, lane="bulk")
        counter.inc(lane="interactive")
        assert counter.value(lane="bulk") == 3
        assert counter.value(lane="interactive") == 1
        assert counter.value(lane="never-touched") == 0

    def test_label_mismatch_rejected(self):
        counter = Counter("hits_total", labelnames=("lane",))
        with pytest.raises(ValueError, match="hits_total"):
            counter.inc()
        with pytest.raises(ValueError, match="declared"):
            counter.inc(shard="0")

    def test_gauge_goes_down(self):
        gauge = Gauge("depth")
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value() == 3
        gauge.set(0)
        assert gauge.value() == 0

    def test_histogram_cumulative_buckets(self):
        hist = Histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 5.0, 50.0, 5_000.0):
            hist.observe(value)
        snap = hist.value()
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(5_060.5)
        # Buckets are cumulative (Prometheus semantics); +Inf is implied
        # by count.
        assert snap["buckets"] == {1.0: 1, 10.0: 3, 100.0: 4}

    def test_empty_histogram_value(self):
        hist = Histogram("lat_ms", buckets=(1.0,))
        assert hist.value() == {"count": 0, "sum": 0.0, "buckets": {}}

    def test_bound_instrument_pins_labels(self):
        counter = Counter("hits_total", labelnames=("lane",))
        bound = counter.bind(lane="bulk")
        bound.inc()
        bound.inc(4)
        assert bound.value() == 5
        assert counter.value(lane="bulk") == 5

    def test_metric_attr_shim_reads_and_writes(self):
        registry = MetricsRegistry()

        class Component:
            windows = MetricAttr("_m_windows")

            def __init__(self) -> None:
                self._m_windows = registry.counter("windows_total").bind()
                self.windows = 0

        component = Component()
        component.windows += 1
        component.windows += 1
        assert component.windows == 2
        assert registry.counter("windows_total").value() == 2


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("a_total", "help text")
        assert registry.counter("a_total") is first

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            registry.gauge("a_total")
        registry.gauge("b")
        with pytest.raises(ValueError, match="already registered as gauge"):
            registry.histogram("b")

    def test_collectors_run_at_snapshot_time(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("live_depth")
        live = {"depth": 7}
        registry.add_collector(lambda: gauge.set(live["depth"]))
        assert registry.snapshot().get("live_depth") == 7
        live["depth"] = 3
        assert registry.snapshot().get("live_depth") == 3

    def test_snapshot_get_and_names(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", labelnames=("lane",)).inc(lane="bulk")
        registry.counter("misses_total").inc(9)
        snap = registry.snapshot()
        assert snap.names() == ["hits_total", "misses_total"]
        assert snap.get("hits_total", lane="bulk") == 1
        assert snap.get("hits_total", lane="other") is None
        assert snap.get("misses_total") == 9
        assert snap.get("absent") is None
        assert json.loads(snap.to_json())["misses_total"]["series"][0]["value"] == 9


class TestPrometheusText:
    def test_counter_and_gauge_rendering(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "Cache hits.", labelnames=("lane",)).inc(
            lane="bulk"
        )
        registry.gauge("depth").set(4)
        text = registry.snapshot().to_prometheus_text()
        assert "# HELP hits_total Cache hits." in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{lane="bulk"} 1' in text
        assert "# TYPE depth gauge" in text
        assert "depth 4" in text
        assert text.endswith("\n")

    def test_histogram_rendering(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_ms", "Latency.", buckets=(1.0, 10.0))
        hist.observe(0.5)
        hist.observe(5.0)
        hist.observe(500.0)
        text = registry.snapshot().to_prometheus_text()
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_sum 505.5" in text
        assert "lat_ms_count 3" in text

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", labelnames=("q",)).inc(q='say "hi"\n')
        text = registry.snapshot().to_prometheus_text()
        assert 'odd_total{q="say \\"hi\\"\\n"} 1' in text

    def test_merge_snapshots_adds_shard_label(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("hits_total").inc(2)
        right.counter("hits_total").inc(5)
        merged = merge_snapshots({"0": left.snapshot(), "router": right.snapshot()})
        assert merged.get("hits_total", shard="0") == 2
        assert merged.get("hits_total", shard="router") == 5
        assert merged.get("hits_total") is None  # unlabeled series is gone


# -- end-to-end traces through the serving stack -------------------------------


class TestEndToEndTrace:
    def test_untraced_probe_has_no_trace(self):
        system = AgentFirstDataSystem(build_db())
        response = system.submit(overlapping_probes(1)[0])
        assert response.trace is None

    def test_traced_probe_carries_finished_trace(self):
        system = AgentFirstDataSystem(build_db())
        response = system.submit(traced_probes(1)[0])
        trace = response.trace
        assert trace is not None and trace.finished
        assert trace.root.attrs["agent_id"] == "agent-0"
        assert_complete(trace)
        names = span_names(trace)
        assert "gateway:window" in names
        assert "scheduler:batch" in names
        # Engine node spans carry the executing engine and row counts.
        node = trace.find("node:")[0]
        assert node.attrs.get("engine") in {"row", "columnar"}
        # The export carries every span.
        assert len(trace.to_chrome()["traceEvents"]) == len(names)

    def test_streamed_probe_trace_has_queue_and_classify_spans(self):
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(enable_qos=True, gateway_max_batch=4),
            workers=1,
        )
        probes = traced_probes(4)
        tickets = [system.gateway.submit(p) for p in probes]
        system.gateway.flush()
        responses = [t.result(timeout=60.0) for t in tickets]
        system.gateway.close()
        for response in responses:
            trace = response.trace
            assert trace is not None and trace.finished
            assert_complete(trace)
            (queued,) = trace.find("gateway:queued")
            assert queued.end is not None
            assert queued.attrs["window_size"] >= 1
            assert "formation_ms" in queued.attrs
            (classify,) = trace.find("qos:classify")
            assert classify.attrs["lane"] == "standard"

    def test_every_probe_in_traced_batch_is_complete(self):
        system = AgentFirstDataSystem(build_db(), workers=8)
        responses = system.submit_many(traced_probes(8))
        assert len(responses) == 8
        for response in responses:
            assert response.trace is not None
            assert_complete(response.trace)

    def test_node_latency_histogram_populated_by_traced_runs(self):
        system = AgentFirstDataSystem(build_db())
        system.submit(traced_probes(1)[0])
        snap = system.metrics()
        # The engine label tracks whichever engine actually ran (the
        # columnar CI leg flips it), so accept either.
        series = [
            snap.get("repro_engine_node_latency_ms", node="Scan", engine=engine)
            for engine in ("row", "columnar")
        ]
        assert any(value is not None and value["count"] >= 1 for value in series)

    def test_wal_commit_span_present_with_wal(self, tmp_path):
        db = build_db()
        if db.catalog.wal is None:  # REPRO_WAL=1 already attached one
            db.attach_wal(str(tmp_path))
        system = AgentFirstDataSystem(db)
        response = system.submit(traced_probes(1)[0])
        (commit,) = response.trace.find("wal:commit")
        assert commit.end is not None


class TestQosTraceSpans:
    def test_degraded_probe_trace_carries_shed_verdict(self):
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(
                enable_qos=True,
                qos=QosConfig(queue_high=4, shed_sample_rate=0.1),
                gateway_max_batch=64,
                gateway_max_wait=30.0,
            ),
            workers=1,
        )
        probes = [
            Probe(
                queries=("SELECT product FROM sales WHERE amount > 1.0",),
                brief=Brief(lane="bulk", trace=True),
                agent_id=f"bulk-{i}",
            )
            for i in range(8)
        ]
        tickets = [system.gateway.submit(p) for p in probes]
        system.gateway.flush()
        responses = [t.result(timeout=60.0) for t in tickets]
        system.gateway.close()
        assert system.gateway.probes_degraded == len(probes)
        for response in responses:
            assert response.outcomes[0].status == "approximate"
            (shed,) = response.trace.find("qos:shed")
            assert shed.attrs["kind"] == "sample"
            assert shed.attrs["cause"]  # names the crossed watermark
            assert shed.attrs["sample_cap"] == pytest.approx(0.1)
            (classify,) = response.trace.find("qos:classify")
            assert classify.attrs["lane"] == "bulk"


class TestProcessSeamTrace:
    def test_worker_spans_reparented_onto_coordinator_clock(self):
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(dispatch_backend="process"),
            workers=8,
        )
        responses = system.submit_many(traced_probes(8))
        for response in responses:
            assert_complete(response.trace)
        worker_spans = [
            span
            for response in responses
            for span in response.trace.find("speculation:worker")
        ]
        assert worker_spans, "no unit crossed the process seam"
        parents = {
            id(span): parent
            for response in responses
            for parent in response.trace.spans()
            for span in parent.children
        }
        own_pid = os.getpid()
        for span in worker_spans:
            assert span.attrs["pid"] != own_pid
            parent = parents[id(span)]
            # reparent() anchors the worker subtree at its parent's start.
            assert span.start == pytest.approx(parent.start)
            assert span.end is not None
            for node in span.find("node:"):
                assert node.start >= span.start

    def test_thread_speculation_unit_spans(self):
        # Pinned to the thread substrate: the process-backend CI leg's
        # env override must not reroute this test's speculation.
        system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(dispatch_backend="thread"), workers=8
        )
        responses = system.submit_many(traced_probes(8))
        units = [
            span
            for response in responses
            for span in response.trace.find("speculate:unit")
        ]
        assert units
        assert all(unit.attrs["backend"] == "thread" for unit in units)


class TestScatterTrace:
    def test_cross_shard_probe_shows_fanout_and_merge(self):
        sharded = ShardedSystem(build_tenant_db(), shards=2, partition=PARTITION)
        try:
            response = sharded.submit(
                Probe(
                    queries=("SELECT COUNT(*), SUM(qty) FROM sales",),
                    brief=Brief(trace=True),
                    agent_id="scatterer",
                )
            )
            trace = response.trace
            assert trace is not None and trace.finished
            (fanout,) = trace.find("scatter:fanout")
            assert fanout.attrs["shards"] == 2
            assert trace.find("scatter:merge")
            shard_spans = trace.find("scatter:shard")
            assert len(shard_spans) == 2
            for shard_span in shard_spans:
                # Each fan-out leg carries the shard's full probe subtree.
                assert shard_span.find("node:") or shard_span.find("engine:")
        finally:
            sharded.close()

    def test_single_shard_passthrough_trace_is_ordinary(self):
        sharded = ShardedSystem(build_tenant_db(), shards=1)
        try:
            response = sharded.submit(
                Probe(
                    queries=("SELECT COUNT(*) FROM sales",),
                    brief=Brief(trace=True),
                )
            )
            assert response.trace is not None
            assert not response.trace.find("scatter:")
            assert_complete(response.trace)
        finally:
            sharded.close()


# -- the differential: tracing must never change answers -----------------------


class TestTracingDifferential:
    @pytest.mark.parametrize("workers", [1, 8])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("engine", ["row", "columnar"])
    def test_traced_matches_untraced(self, workers, backend, engine):
        config = SystemConfig(dispatch_backend=backend, engine=engine)
        plain_system = AgentFirstDataSystem(build_db(), config=config, workers=workers)
        traced_system = AgentFirstDataSystem(
            build_db(), config=config, workers=workers
        )
        plain = plain_system.submit_many(overlapping_probes(6))
        traced = traced_system.submit_many(traced_probes(6))
        assert_same_outcomes(plain, traced)
        for plain_response, traced_response in zip(plain, traced):
            assert plain_response.steering == traced_response.steering
            assert plain_response.trace is None
            assert traced_response.trace is not None
        # The migrated stats() surfaces keep identical keys either way.
        assert (
            plain_system.gateway.stats().keys()
            == traced_system.gateway.stats().keys()
        )
        assert (
            plain_system.scheduler.batches_served
            == traced_system.scheduler.batches_served
        )
        assert (
            plain_system.scheduler.queries_dispatched
            == traced_system.scheduler.queries_dispatched
        )


# -- stats() compatibility and the unified metrics surface ---------------------


class TestMetricsSurface:
    def test_stats_keys_and_registry_agree(self):
        system = AgentFirstDataSystem(build_db())
        system.submit_many(overlapping_probes(4))
        snap = system.metrics()
        gateway_stats = system.gateway.stats()
        assert gateway_stats["windows_direct"] == snap.get(
            "repro_gateway_windows_direct_total"
        )
        assert system.scheduler.batches_served == snap.get(
            "repro_scheduler_batches_served_total"
        )
        assert system.scheduler.queries_dispatched == snap.get(
            "repro_scheduler_queries_dispatched_total"
        )
        # Engine collectors surface the subplan cache's live counters.
        hits, misses, _ = system.scheduler.optimizer.cache.counters()
        assert hits == snap.get("repro_engine_subplan_cache_hits")
        assert misses == snap.get("repro_engine_subplan_cache_misses")
        text = snap.to_prometheus_text()
        assert "# TYPE repro_gateway_windows_direct_total counter" in text
        assert "# TYPE repro_engine_subplan_cache_hit_ratio gauge" in text

    def test_sharded_metrics_merge_with_shard_labels(self):
        sharded = ShardedSystem(build_tenant_db(), shards=2, partition=PARTITION)
        try:
            sharded.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
            snap = sharded.metrics()
            # The tier registry rides along as the pseudo-shard "router".
            assert (
                snap.get("repro_shard_units_matched_total", shard="router")
                is not None
            )
            per_shard = [
                snap.get("repro_gateway_windows_direct_total", shard=str(i))
                for i in range(2)
            ]
            assert all(value is not None for value in per_shard)
        finally:
            sharded.close()


# -- merge_brief and the gateway's trace plumbing ------------------------------


class TestBriefMerging:
    def test_trace_field_merges_like_the_others(self):
        assert merge_brief(Brief(), Brief(trace=True)).trace is True
        assert merge_brief(Brief(trace=False), Brief(trace=True)).trace is False
        assert merge_brief(Brief(trace=True), Brief()).trace is True
        assert merge_brief(Brief(), Brief()).trace is None


# -- slow-probe log ------------------------------------------------------------


class TestSlowProbeLog:
    def entry(self, agent: str, ms: float = 12.0) -> SlowProbeEntry:
        return SlowProbeEntry(
            agent_id=agent, turn=1, duration_ms=ms, threshold_ms=1.0, trace=None
        )

    def test_ring_buffer_evicts_oldest(self):
        log = SlowProbeLog(capacity=2)
        for name in ("a", "b", "c"):
            log.record(self.entry(name))
        assert [e.agent_id for e in log.entries()] == ["b", "c"]
        assert len(log) == 2
        log.clear()
        assert len(log) == 0

    def test_record_emits_warning(self, caplog):
        log = SlowProbeLog()
        with caplog.at_level(logging.WARNING, logger="repro.obs.slowlog"):
            log.record(self.entry("laggard", ms=77.0))
        assert "slow probe" in caplog.text
        assert "laggard" in caplog.text

    def test_resolve_threshold(self, monkeypatch):
        assert resolve_slow_probe_ms() is None
        assert resolve_slow_probe_ms(5.0) == 5.0
        monkeypatch.setenv("REPRO_SLOW_PROBE_MS", "2.5")
        assert resolve_slow_probe_ms() == 2.5
        assert resolve_slow_probe_ms(5.0) == 2.5  # env wins
        monkeypatch.setenv("REPRO_SLOW_PROBE_MS", "not-a-number")
        assert resolve_slow_probe_ms(5.0) == 5.0

    def test_config_threshold_captures_traced_probe(self):
        system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(slow_probe_ms=0.0)
        )
        system.submit(traced_probes(1)[0])
        entries = system.slow_probes.entries()
        assert entries
        assert entries[0].agent_id == "agent-0"
        assert entries[0].trace is not None and entries[0].trace.finished

    def test_env_threshold_implies_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_SLOW_PROBE_MS", "0")
        system = AgentFirstDataSystem(build_db())
        response = system.submit(overlapping_probes(1)[0])
        # No Brief.trace anywhere: the threshold alone turned tracing on.
        assert response.trace is not None
        assert system.slow_probes.entries()
