"""bench_record: append-only perf trajectories with same-commit replacement.

A retried CI job (or a local re-run) lands on the same git SHA; its
record must *replace* that commit's earlier run instead of double-counting
it in the trajectory. Runs whose SHA could not be resolved ("unknown")
are never deduplicated — they cannot be told apart.
"""

from __future__ import annotations

import json
import os
import sys

import pytest

sys.path.insert(
    0,
    os.path.abspath(
        os.path.join(os.path.dirname(__file__), os.pardir, "benchmarks")
    ),
)

import bench_record  # noqa: E402


def read_runs(path: str) -> list[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)["runs"]


@pytest.fixture
def trajectory(tmp_path, monkeypatch):
    path = str(tmp_path / "BENCH_test.json")

    def append(sha: str, **payload) -> str:
        monkeypatch.setattr(bench_record, "git_sha", lambda: sha)
        return bench_record.append_run(
            "BENCH_TEST_JSON_UNSET", path, {"bench": "t", **payload}
        )

    return path, append


class TestSameCommitReplacement:
    def test_same_sha_rerun_replaces_not_appends(self, trajectory):
        path, append = trajectory
        append("abc123", metric=1)
        append("abc123", metric=2)
        runs = read_runs(path)
        assert len(runs) == 1
        assert runs[0]["metric"] == 2  # the retry's numbers won

    def test_different_shas_accumulate(self, trajectory):
        path, append = trajectory
        append("abc123", metric=1)
        append("def456", metric=2)
        runs = read_runs(path)
        assert [run["git_sha"] for run in runs] == ["abc123", "def456"]

    def test_unknown_sha_never_deduplicated(self, trajectory):
        path, append = trajectory
        append("unknown", metric=1)
        append("unknown", metric=2)
        assert len(read_runs(path)) == 2

    def test_replacement_keeps_other_commits(self, trajectory):
        path, append = trajectory
        append("aaa", metric=1)
        append("bbb", metric=2)
        append("aaa", metric=3)
        runs = read_runs(path)
        assert len(runs) == 2
        by_sha = {run["git_sha"]: run["metric"] for run in runs}
        assert by_sha == {"aaa": 3, "bbb": 2}

    def test_legacy_single_run_adopted_then_deduped(self, trajectory, tmp_path):
        path, append = trajectory
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"bench": "t", "metric": 0}, handle)  # pre-append format
        append("abc123", metric=1)
        runs = read_runs(path)
        # The legacy run (unknown SHA) is preserved alongside the new one.
        assert len(runs) == 2
        assert runs[0]["git_sha"] == "unknown" and runs[0]["metric"] == 0
        append("abc123", metric=2)
        runs = read_runs(path)
        assert len(runs) == 2  # replaced abc123, kept the legacy record
        assert runs[-1]["metric"] == 2

    def test_env_var_overrides_path(self, tmp_path, monkeypatch):
        override = str(tmp_path / "elsewhere.json")
        monkeypatch.setenv("BENCH_TEST_JSON", override)
        monkeypatch.setattr(bench_record, "git_sha", lambda: "abc123")
        written = bench_record.append_run(
            "BENCH_TEST_JSON", str(tmp_path / "default.json"), {"bench": "t"}
        )
        assert written == override
        assert len(read_runs(override)) == 1
