"""Tests for the heterogeneous backends: document store, dialects,
federation."""

from __future__ import annotations

import pytest

from repro.backends import (
    BackendKind,
    DocumentStore,
    FederatedEnvironment,
    RelationalBackend,
)
from repro.db import Database


@pytest.fixture
def store() -> DocumentStore:
    docs = DocumentStore("mongo")
    docs.collection("users").insert_many(
        [
            {"name": "Ada", "segment": "GOLD_TIER", "age": 36, "tags": ["a", "b"]},
            {"name": "Grace", "segment": "SILVER_TIER", "age": 45},
            {"name": "Alan", "segment": "GOLD_TIER", "age": 41},
        ]
    )
    return docs


class TestCollection:
    def test_insert_assigns_ids(self, store):
        docs = store.collection("users").find()
        assert all("_id" in d for d in docs)

    def test_find_equality(self, store):
        docs = store.collection("users").find({"segment": "GOLD_TIER"})
        assert {d["name"] for d in docs} == {"Ada", "Alan"}

    def test_find_operators(self, store):
        users = store.collection("users")
        assert len(users.find({"age": {"$gt": 40}})) == 2
        assert len(users.find({"age": {"$lte": 36}})) == 1
        assert len(users.find({"name": {"$in": ["Ada", "Grace"]}})) == 2
        assert len(users.find({"name": {"$regex": "^A"}})) == 2
        assert len(users.find({"tags": {"$exists": True}})) == 1

    def test_find_and_or(self, store):
        users = store.collection("users")
        docs = users.find(
            {"$or": [{"name": "Ada"}, {"name": "Grace"}]}
        )
        assert len(docs) == 2
        docs = users.find(
            {"$and": [{"segment": "GOLD_TIER"}, {"age": {"$gt": 40}}]}
        )
        assert [d["name"] for d in docs] == ["Alan"]

    def test_projection_include_exclude(self, store):
        users = store.collection("users")
        included = users.find({}, projection={"name": 1})
        assert set(included[0].keys()) == {"name"}
        excluded = users.find({}, projection={"age": 0})
        assert "age" not in excluded[0]

    def test_limit(self, store):
        assert len(store.collection("users").find(limit=2)) == 2

    def test_distinct_and_fields(self, store):
        users = store.collection("users")
        assert set(users.distinct("segment")) == {"GOLD_TIER", "SILVER_TIER"}
        assert "name" in users.field_names()

    def test_update_and_delete(self, store):
        users = store.collection("users")
        changed = users.update_many({"name": "Ada"}, {"$set": {"age": 37}})
        assert changed == 1
        assert users.find({"name": "Ada"})[0]["age"] == 37
        removed = users.delete_many({"segment": "GOLD_TIER"})
        assert removed == 2
        assert users.count() == 1

    def test_aggregate_group(self, store):
        out = store.collection("users").aggregate(
            [
                {"$group": {"_id": "$segment", "n": {"$sum": 1}, "avg_age": {"$avg": "$age"}}},
                {"$sort": {"n": -1}},
            ]
        )
        assert out[0]["_id"] == "GOLD_TIER"
        assert out[0]["n"] == 2
        assert out[0]["avg_age"] == pytest.approx(38.5)

    def test_aggregate_match_project_limit(self, store):
        out = store.collection("users").aggregate(
            [
                {"$match": {"age": {"$gt": 30}}},
                {"$project": {"name": 1}},
                {"$limit": 2},
            ]
        )
        assert len(out) == 2
        assert set(out[0].keys()) == {"name"}

    def test_aggregate_unwind(self, store):
        out = store.collection("users").aggregate([{"$unwind": "$tags"}])
        assert [d["tags"] for d in out] == ["a", "b"]


class TestDocumentStoreBackend:
    def test_list_tables(self, store):
        response = store.list_tables()
        assert response.ok and "users" in response.rows

    def test_describe_missing_collection(self, store):
        response = store.describe("ghost")
        assert not response.ok
        assert "ns does not exist" in response.error

    def test_query_find_spec(self, store):
        response = store.query("{'collection': 'users', 'filter': {'name': 'Ada'}}")
        assert response.ok
        assert response.rows[0]["name"] == "Ada"

    def test_query_pipeline_spec(self, store):
        response = store.query(
            "{'collection': 'users', 'pipeline': [{'$group': {'_id': None, 'n': {'$sum': 1}}}]}"
        )
        assert response.ok and response.rows[0]["n"] == 3

    def test_query_malformed(self, store):
        assert not store.query("not a dict at all (").ok


class TestRelationalDialects:
    def make_backend(self, kind: BackendKind) -> RelationalBackend:
        db = Database("x")
        db.execute("CREATE TABLE items (id INT, name TEXT)")
        db.execute("INSERT INTO items VALUES (1, 'a')")
        return RelationalBackend(kind.value, kind, db)

    def test_postgres_lists_system_noise(self):
        backend = self.make_backend(BackendKind.POSTGRES)
        rows = backend.list_tables().rows
        assert "items" in rows
        assert any(name.startswith("pg_") for name in rows)

    def test_duckdb_and_sqlite_clean_listing(self):
        for kind in (BackendKind.DUCKDB, BackendKind.SQLITE):
            rows = self.make_backend(kind).list_tables().rows
            assert rows == ["items"]

    def test_dialect_error_messages(self):
        messages = {
            BackendKind.POSTGRES: 'relation "ghost" does not exist',
            BackendKind.SQLITE: "no such table: ghost",
            BackendKind.DUCKDB: "Table with name ghost does not exist!",
        }
        for kind, expected in messages.items():
            response = self.make_backend(kind).describe("ghost")
            assert response.error == expected

    def test_query_error_flavoured(self):
        backend = self.make_backend(BackendKind.POSTGRES)
        response = backend.query("SELECT * FROM ghost")
        assert not response.ok
        assert response.error.startswith("ERROR: ")

    def test_sample(self):
        backend = self.make_backend(BackendKind.DUCKDB)
        response = backend.sample("items")
        assert response.ok and response.rows == [(1, "a")]


class TestFederation:
    def test_interactions_logged(self, store):
        env = FederatedEnvironment()
        env.add_backend(store)
        env.list_tables("mongo")
        env.sample("mongo", "users", limit=1)
        env.query("mongo", "{'collection': 'users', 'limit': 1}")
        assert env.interactions() == 3
        assert env.log[0].operation == "list_tables"
        assert all(record.ok for record in env.log)

    def test_failed_interaction_recorded(self, store):
        env = FederatedEnvironment()
        env.add_backend(store)
        env.describe("mongo", "ghost")
        assert not env.log[0].ok
        assert env.log[0].error

    def test_reset_log(self, store):
        env = FederatedEnvironment()
        env.add_backend(store)
        env.list_tables("mongo")
        env.reset_log()
        assert env.interactions() == 0
