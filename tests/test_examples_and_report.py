"""Integration smoke tests: every example script runs end-to-end, and the
harness renderers produce well-formed reports."""

from __future__ import annotations

import io
import pathlib
import runpy
import sys
from contextlib import redirect_stdout

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    argv = sys.argv
    sys.argv = [name]
    try:
        with redirect_stdout(buffer):
            runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return buffer.getvalue()


class TestExamples:
    def test_quickstart(self):
        output = run_example("quickstart.py")
        assert "why-not steering" in output
        assert "California" in output
        assert "from_history" in output

    def test_coffee_sales_analysis(self):
        output = run_example("coffee_sales_analysis.py")
        assert "engine work saved" in output
        assert "Berkeley" in output
        # Sharing must actually save work.
        assert "%" in output.split("engine work saved:")[1]

    def test_flight_crew_rescheduling(self):
        output = run_example("flight_crew_rescheduling.py")
        assert "merged plan_c" in output
        assert "rollbacks" in output
        assert "Grace" in output  # the only legal captain

    def test_multibackend_cleaning(self):
        output = run_example("multibackend_cleaning.py")
        assert "no hints" in output and "with expert hints" in output
        assert "gold" in output


class TestHarnessRendering:
    def test_fig_renderers_contain_series(self):
        from repro.harness import run_fig1a

        result = run_fig1a(seed=2, n_tasks=8, k_values=(1, 5))
        text = result.render()
        assert "Figure 1a" in text
        assert "gpt-4o-mini-sim" in text

    def test_table1_renderer_shape(self):
        from repro.harness import run_table1

        result = run_table1(seed=2, n_tasks=6, repetitions=1)
        text = result.render()
        assert "Table 1" in text
        assert "Reduction (%)" in text
        assert "all SQL queries" in text

    def test_report_builds_all_sections(self):
        from repro.harness.report import HEADER

        assert "EXPERIMENTS" in HEADER

    def test_fig3_render_rows(self):
        from repro.harness import run_fig3

        result = run_fig3(seed=2, n_tasks=6, repetitions=1)
        text = result.render()
        assert "exploring tables" in text
        assert "attempting entire query" in text
