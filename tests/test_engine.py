"""End-to-end engine tests: SELECT semantics over the database facade."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import ExecutionError, PlanError


class TestProjectionAndFilter:
    def test_select_star(self, sales_db):
        result = sales_db.execute("SELECT * FROM stores")
        assert result.columns == ["id", "city", "state", "opened"]
        assert result.row_count == 5

    def test_column_subset_and_alias(self, sales_db):
        result = sales_db.execute("SELECT city AS c FROM stores WHERE id = 1")
        assert result.columns == ["c"]
        assert result.rows == [("Berkeley",)]

    def test_expression_projection(self, sales_db):
        result = sales_db.execute("SELECT amount * 2 FROM sales WHERE id = 1")
        assert result.rows == [(241.0,)]

    def test_where_and_or(self, sales_db):
        result = sales_db.execute(
            "SELECT id FROM sales WHERE product = 'tea' AND year = 2024 OR id = 1"
            " ORDER BY id"
        )
        assert result.column_values("id") == [1, 5, 8]

    def test_between(self, sales_db):
        result = sales_db.execute(
            "SELECT id FROM sales WHERE amount BETWEEN 50 AND 100 ORDER BY id"
        )
        assert result.column_values("id") == [3, 5, 6, 7]

    def test_in_list(self, sales_db):
        result = sales_db.execute(
            "SELECT city FROM stores WHERE state IN ('CA','WA') ORDER BY city"
        )
        assert result.column_values("city") == ["Berkeley", "Oakland", "Seattle"]

    def test_like_case_insensitive(self, sales_db):
        result = sales_db.execute("SELECT city FROM stores WHERE city LIKE 'b%'")
        assert result.rows == [("Berkeley",)]

    def test_is_null_semantics(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT, b TEXT)")
        empty_db.execute("INSERT INTO t VALUES (1, NULL), (2, 'x')")
        assert empty_db.execute("SELECT a FROM t WHERE b IS NULL").rows == [(1,)]
        assert empty_db.execute("SELECT a FROM t WHERE b IS NOT NULL").rows == [(2,)]

    def test_null_comparison_filters_row(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT, b INT)")
        empty_db.execute("INSERT INTO t VALUES (1, NULL)")
        assert empty_db.execute("SELECT a FROM t WHERE b = 1").rows == []
        assert empty_db.execute("SELECT a FROM t WHERE b <> 1").rows == []

    def test_three_valued_or(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT, b INT)")
        empty_db.execute("INSERT INTO t VALUES (1, NULL)")
        # NULL OR TRUE is TRUE.
        assert empty_db.execute("SELECT a FROM t WHERE b = 1 OR a = 1").rows == [(1,)]

    def test_unknown_column_error_lists_available(self, sales_db):
        with pytest.raises(PlanError) as excinfo:
            sales_db.execute("SELECT wrong FROM stores")
        assert "available" in str(excinfo.value)

    def test_unknown_table_error_lists_known(self, sales_db):
        with pytest.raises(PlanError) as excinfo:
            sales_db.execute("SELECT * FROM ghost")
        assert "known tables" in str(excinfo.value)

    def test_ambiguous_column(self, sales_db):
        with pytest.raises(PlanError) as excinfo:
            sales_db.execute(
                "SELECT id FROM stores JOIN sales ON stores.id = sales.store_id"
            )
        assert "ambiguous" in str(excinfo.value)


class TestJoins:
    def test_inner_join(self, sales_db):
        result = sales_db.execute(
            "SELECT s.city, x.amount FROM stores s JOIN sales x"
            " ON s.id = x.store_id WHERE x.product = 'tea' ORDER BY x.amount"
        )
        assert result.rows == [
            ("Oakland", 20.0),
            ("Berkeley", 30.0),
            ("Seattle", 55.5),
        ]

    def test_left_join_null_extension(self, empty_db):
        empty_db.execute("CREATE TABLE a (id INT)")
        empty_db.execute("CREATE TABLE b (id INT, v TEXT)")
        empty_db.execute("INSERT INTO a VALUES (1), (2)")
        empty_db.execute("INSERT INTO b VALUES (1, 'x')")
        result = empty_db.execute(
            "SELECT a.id, b.v FROM a LEFT JOIN b ON a.id = b.id ORDER BY a.id"
        )
        assert result.rows == [(1, "x"), (2, None)]

    def test_cross_join_cardinality(self, empty_db):
        empty_db.execute("CREATE TABLE a (x INT)")
        empty_db.execute("CREATE TABLE b (y INT)")
        empty_db.execute("INSERT INTO a VALUES (1),(2),(3)")
        empty_db.execute("INSERT INTO b VALUES (10),(20)")
        result = empty_db.execute("SELECT x, y FROM a CROSS JOIN b")
        assert result.row_count == 6

    def test_non_equi_join_falls_back_to_nested_loop(self, empty_db):
        empty_db.execute("CREATE TABLE a (x INT)")
        empty_db.execute("CREATE TABLE b (y INT)")
        empty_db.execute("INSERT INTO a VALUES (1),(5)")
        empty_db.execute("INSERT INTO b VALUES (3)")
        result = empty_db.execute("SELECT x, y FROM a JOIN b ON a.x < b.y")
        assert result.rows == [(1, 3)]

    def test_join_with_residual_condition(self, sales_db):
        result = sales_db.execute(
            "SELECT s.city FROM stores s JOIN sales x"
            " ON s.id = x.store_id AND x.amount > 150"
        )
        assert result.rows == [("Seattle",)]

    def test_self_join_requires_aliases(self, sales_db):
        with pytest.raises(PlanError):
            sales_db.execute(
                "SELECT * FROM stores JOIN stores ON stores.id = stores.id"
            )

    def test_three_way_join(self, sales_db):
        result = sales_db.execute(
            "SELECT DISTINCT a.city FROM stores a"
            " JOIN sales x ON a.id = x.store_id"
            " JOIN stores b ON a.state = b.state"
            " WHERE b.city = 'Oakland' ORDER BY a.city"
        )
        assert result.column_values("city") == ["Berkeley", "Oakland"]

    def test_null_keys_do_not_match(self, empty_db):
        empty_db.execute("CREATE TABLE a (k INT)")
        empty_db.execute("CREATE TABLE b (k INT)")
        empty_db.execute("INSERT INTO a VALUES (NULL), (1)")
        empty_db.execute("INSERT INTO b VALUES (NULL), (1)")
        result = empty_db.execute("SELECT a.k FROM a JOIN b ON a.k = b.k")
        assert result.rows == [(1,)]


class TestAggregation:
    def test_global_aggregates(self, sales_db):
        result = sales_db.execute(
            "SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount) FROM sales"
        )
        row = result.rows[0]
        assert row[0] == 10
        assert row[1] == pytest.approx(670.25)
        assert row[2] == 5.0
        assert row[3] == 200.0

    def test_avg_ignores_nulls(self, empty_db):
        empty_db.execute("CREATE TABLE t (v FLOAT)")
        empty_db.execute("INSERT INTO t VALUES (1.0), (NULL), (3.0)")
        assert empty_db.execute("SELECT AVG(v) FROM t").first_value() == 2.0

    def test_count_column_vs_star(self, empty_db):
        empty_db.execute("CREATE TABLE t (v INT)")
        empty_db.execute("INSERT INTO t VALUES (1), (NULL)")
        result = empty_db.execute("SELECT COUNT(*), COUNT(v) FROM t")
        assert result.rows == [(2, 1)]

    def test_count_distinct(self, sales_db):
        assert (
            sales_db.execute("SELECT COUNT(DISTINCT product) FROM sales").first_value()
            == 3
        )

    def test_group_by_with_having(self, sales_db):
        result = sales_db.execute(
            "SELECT product, COUNT(*) AS n FROM sales GROUP BY product"
            " HAVING COUNT(*) >= 3 ORDER BY n DESC"
        )
        assert result.rows == [("coffee", 6), ("tea", 3)]

    def test_group_by_expression(self, sales_db):
        result = sales_db.execute(
            "SELECT year + 0 AS y, COUNT(*) FROM sales GROUP BY year + 0 ORDER BY y"
        )
        assert result.rows == [(2023, 5), (2024, 5)]

    def test_group_by_alias(self, sales_db):
        result = sales_db.execute(
            "SELECT UPPER(product) AS p, COUNT(*) FROM sales GROUP BY p ORDER BY p"
        )
        assert [r[0] for r in result.rows] == ["COFFEE", "PASTRY", "TEA"]

    def test_empty_input_global_aggregate(self, empty_db):
        empty_db.execute("CREATE TABLE t (v INT)")
        result = empty_db.execute("SELECT COUNT(*), SUM(v) FROM t")
        assert result.rows == [(0, None)]

    def test_empty_input_grouped_returns_no_rows(self, empty_db):
        empty_db.execute("CREATE TABLE t (k INT, v INT)")
        result = empty_db.execute("SELECT k, SUM(v) FROM t GROUP BY k")
        assert result.rows == []

    def test_ungrouped_column_rejected(self, sales_db):
        with pytest.raises(PlanError) as excinfo:
            sales_db.execute("SELECT city, COUNT(*) FROM stores GROUP BY state")
        assert "GROUP BY" in str(excinfo.value)

    def test_aggregate_in_where_rejected(self, sales_db):
        with pytest.raises(PlanError):
            sales_db.execute("SELECT * FROM sales WHERE SUM(amount) > 10")

    def test_order_by_aggregate(self, sales_db):
        result = sales_db.execute(
            "SELECT product FROM sales GROUP BY product ORDER BY SUM(amount) DESC"
        )
        assert result.column_values("product") == ["coffee", "tea", "pastry"]

    def test_group_key_null_forms_its_own_group(self, empty_db):
        empty_db.execute("CREATE TABLE t (k TEXT, v INT)")
        empty_db.execute("INSERT INTO t VALUES ('a',1),(NULL,2),(NULL,3)")
        result = empty_db.execute("SELECT k, SUM(v) FROM t GROUP BY k")
        as_dict = {row[0]: row[1] for row in result.rows}
        assert as_dict == {"a": 1, None: 5}


class TestOrderingLimitDistinct:
    def test_order_by_multiple_keys(self, sales_db):
        result = sales_db.execute(
            "SELECT product, amount FROM sales ORDER BY product ASC, amount DESC LIMIT 3"
        )
        assert result.rows == [
            ("coffee", 200.0),
            ("coffee", 120.5),
            ("coffee", 99.0),
        ]

    def test_order_by_hidden_column(self, sales_db):
        result = sales_db.execute("SELECT city FROM stores ORDER BY opened DESC LIMIT 2")
        assert result.column_values("city") == ["Austin", "Portland"]
        assert result.columns == ["city"]

    def test_nulls_sort_first_ascending(self, empty_db):
        empty_db.execute("CREATE TABLE t (v INT)")
        empty_db.execute("INSERT INTO t VALUES (2), (NULL), (1)")
        assert empty_db.execute("SELECT v FROM t ORDER BY v").column_values("v") == [
            None,
            1,
            2,
        ]

    def test_limit_offset(self, sales_db):
        result = sales_db.execute("SELECT id FROM sales ORDER BY id LIMIT 3 OFFSET 4")
        assert result.column_values("id") == [5, 6, 7]

    def test_distinct(self, sales_db):
        result = sales_db.execute("SELECT DISTINCT state FROM stores ORDER BY state")
        assert result.column_values("state") == ["CA", "OR", "TX", "WA"]

    def test_distinct_order_by_nonprojected_rejected(self, sales_db):
        with pytest.raises(PlanError):
            sales_db.execute("SELECT DISTINCT city FROM stores ORDER BY opened")


class TestSubqueries:
    def test_in_subquery(self, sales_db):
        result = sales_db.execute(
            "SELECT city FROM stores WHERE id IN"
            " (SELECT store_id FROM sales WHERE amount > 100) ORDER BY city"
        )
        assert result.column_values("city") == ["Berkeley", "Seattle"]

    def test_not_in_subquery(self, sales_db):
        result = sales_db.execute(
            "SELECT city FROM stores WHERE id NOT IN"
            " (SELECT store_id FROM sales WHERE product = 'tea') ORDER BY city"
        )
        assert result.column_values("city") == ["Austin", "Portland"]

    def test_scalar_subquery(self, sales_db):
        result = sales_db.execute(
            "SELECT city FROM stores WHERE id ="
            " (SELECT store_id FROM sales ORDER BY amount DESC LIMIT 1)"
        )
        assert result.rows == [("Seattle",)]

    def test_from_subquery(self, sales_db):
        result = sales_db.execute(
            "SELECT sub.product, sub.total FROM"
            " (SELECT product, SUM(amount) AS total FROM sales GROUP BY product) sub"
            " WHERE sub.total > 100 ORDER BY sub.total DESC"
        )
        assert result.column_values("product") == ["coffee", "tea"]

    def test_exists(self, sales_db):
        result = sales_db.execute(
            "SELECT 1 WHERE EXISTS (SELECT 1 FROM sales WHERE amount > 199)"
        )
        assert result.rows == [(1,)]


class TestScalarFunctions:
    def test_string_functions(self, empty_db):
        result = empty_db.execute(
            "SELECT LOWER('AbC'), UPPER('x'), LENGTH('hello'), TRIM('  hi ')"
        )
        assert result.rows == [("abc", "X", 5, "hi")]

    def test_numeric_functions(self, empty_db):
        result = empty_db.execute("SELECT ABS(-4), ROUND(2.567, 1)")
        assert result.rows == [(4, 2.6)]

    def test_coalesce_nullif(self, empty_db):
        result = empty_db.execute("SELECT COALESCE(NULL, NULL, 7), NULLIF(3, 3)")
        assert result.rows == [(7, None)]

    def test_substr(self, empty_db):
        result = empty_db.execute("SELECT SUBSTR('abcdef', 2, 3)")
        assert result.rows == [("bcd",)]

    def test_concat_and_pipes(self, empty_db):
        result = empty_db.execute("SELECT CONCAT('a', 'b', 'c'), 'x' || 'y'")
        assert result.rows == [("abc", "xy")]

    def test_case_expression(self, sales_db):
        result = sales_db.execute(
            "SELECT city, CASE WHEN opened < 2010 THEN 'old' ELSE 'new' END AS age"
            " FROM stores WHERE state = 'CA' ORDER BY city"
        )
        assert result.rows == [("Berkeley", "old"), ("Oakland", "old")]

    def test_cast(self, empty_db):
        result = empty_db.execute("SELECT CAST('42' AS INT), CAST(3 AS TEXT)")
        assert result.rows == [(42, "3")]

    def test_division_by_zero_raises(self, empty_db):
        with pytest.raises(ExecutionError):
            empty_db.execute("SELECT 1 / 0")

    def test_unknown_function_raises_with_hint(self, empty_db):
        with pytest.raises(PlanError) as excinfo:
            empty_db.execute("SELECT FOO(1)")
        assert "known" in str(excinfo.value)


class TestDml:
    def test_insert_with_column_list_fills_nulls(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT, b TEXT, c FLOAT)")
        empty_db.execute("INSERT INTO t (b, a) VALUES ('x', 1)")
        assert empty_db.execute("SELECT * FROM t").rows == [(1, "x", None)]

    def test_insert_select(self, sales_db):
        sales_db.execute("CREATE TABLE ca_stores (id INT, city TEXT)")
        sales_db.execute(
            "INSERT INTO ca_stores SELECT id, city FROM stores WHERE state = 'CA'"
        )
        assert sales_db.execute("SELECT COUNT(*) FROM ca_stores").first_value() == 2

    def test_update_with_expression(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT)")
        empty_db.execute("INSERT INTO t VALUES (1), (2)")
        empty_db.execute("UPDATE t SET a = a * 10 WHERE a = 2")
        assert sorted(empty_db.execute("SELECT a FROM t").column_values("a")) == [1, 20]

    def test_delete_all(self, empty_db):
        empty_db.execute("CREATE TABLE t (a INT)")
        empty_db.execute("INSERT INTO t VALUES (1), (2)")
        empty_db.execute("DELETE FROM t")
        assert empty_db.execute("SELECT COUNT(*) FROM t").first_value() == 0

    def test_create_if_not_exists_idempotent(self, empty_db):
        empty_db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")
        empty_db.execute("CREATE TABLE IF NOT EXISTS t (a INT)")
        assert empty_db.table_names() == ["t"]


class TestInformationSchema:
    def test_tables_lists_user_tables(self, sales_db):
        result = sales_db.execute(
            "SELECT table_name FROM information_schema.tables ORDER BY table_name"
        )
        assert result.column_values("table_name") == ["sales", "stores"]

    def test_row_counts_present(self, sales_db):
        result = sales_db.execute(
            "SELECT row_count FROM information_schema.tables WHERE table_name='sales'"
        )
        assert result.first_value() == 10

    def test_columns_reflect_schema(self, sales_db):
        result = sales_db.execute(
            "SELECT column_name, data_type FROM information_schema.columns"
            " WHERE table_name = 'stores' ORDER BY ordinal_position"
        )
        assert result.rows[0] == ("id", "INTEGER")

    def test_refreshes_after_ddl(self, sales_db):
        sales_db.execute("CREATE TABLE extra (x INT)")
        result = sales_db.execute(
            "SELECT COUNT(*) FROM information_schema.tables"
        )
        assert result.first_value() == 3

    def test_refreshes_after_dml(self, sales_db):
        before = sales_db.execute(
            "SELECT row_count FROM information_schema.tables WHERE table_name='stores'"
        ).first_value()
        sales_db.execute("INSERT INTO stores VALUES (99,'Reno','NV',2020)")
        after = sales_db.execute(
            "SELECT row_count FROM information_schema.tables WHERE table_name='stores'"
        ).first_value()
        assert after == before + 1


class TestResultObject:
    def test_signature_order_insensitive(self, sales_db):
        asc = sales_db.execute("SELECT id FROM sales ORDER BY id")
        desc = sales_db.execute("SELECT id FROM sales ORDER BY id DESC")
        assert asc.signature() == desc.signature()

    def test_signature_sensitive_to_content(self, sales_db):
        a = sales_db.execute("SELECT id FROM sales WHERE id < 5")
        b = sales_db.execute("SELECT id FROM sales WHERE id < 6")
        assert a.signature() != b.signature()

    def test_first_value_requires_1x1(self, sales_db):
        with pytest.raises(ValueError):
            sales_db.execute("SELECT id FROM sales").first_value()

    def test_stats_populated(self, sales_db):
        result = sales_db.execute("SELECT COUNT(*) FROM sales")
        assert result.stats.rows_scanned == 10
        assert result.stats.rows_processed >= 10


class TestSubplanCacheLru:
    def test_hot_entry_survives_eviction_pressure(self):
        from repro.engine.executor import SubplanCache

        cache = SubplanCache(max_entries=4)
        hot = ("hot-fingerprint", 1.0)
        cache.put(hot, [(1,)])
        # Keep the hot entry warm while a stream of cold inserts churns
        # through the cache. Insertion-order eviction would drop it; true
        # LRU must keep it because every round refreshes its recency.
        for i in range(20):
            assert cache.get(hot) == [(1,)]
            cache.put((f"cold-{i}", 1.0), [(i,)])
        assert cache.get(hot) == [(1,)]
        assert cache.evictions > 0
        assert len(cache) <= 4

    def test_cold_entries_evicted_oldest_first(self):
        from repro.engine.executor import SubplanCache

        cache = SubplanCache(max_entries=2)
        cache.put(("a", 1.0), [(1,)])
        cache.put(("b", 1.0), [(2,)])
        cache.get(("a", 1.0))  # refresh a: b is now least-recently used
        cache.put(("c", 1.0), [(3,)])
        assert cache.get(("b", 1.0)) is None
        assert cache.get(("a", 1.0)) == [(1,)]

    def test_put_existing_key_does_not_evict(self):
        from repro.engine.executor import SubplanCache

        cache = SubplanCache(max_entries=2)
        cache.put(("a", 1.0), [(1,)])
        cache.put(("b", 1.0), [(2,)])
        cache.put(("a", 1.0), [(9,)])  # replace, at capacity
        assert cache.evictions == 0
        assert cache.get(("a", 1.0)) == [(9,)]
        assert cache.get(("b", 1.0)) == [(2,)]


class TestSubThresholdCacheLookup:
    """Sub-threshold subplans (size < min_cacheable_size) were never
    cacheable, yet ``_execute`` used to call ``cache.get(None)`` for each
    of them — taking the lock and inflating the miss counter. The lookup
    must be skipped entirely when the cache key is None."""

    def cacheable_count(self, db, sql):
        from repro.engine.executor import DEFAULT_MIN_CACHEABLE_SIZE
        from repro.plan.fingerprint import fingerprints

        plan = db.plan_select(sql)
        return sum(
            1
            for node in plan.walk()
            if fingerprints(node).size >= DEFAULT_MIN_CACHEABLE_SIZE
        )

    def test_miss_counter_counts_only_cacheable_subplans(self, sales_db):
        from repro.engine.executor import SubplanCache

        sql = "SELECT city FROM stores WHERE state = 'CA'"
        cacheable = self.cacheable_count(sales_db, sql)
        plan_size = sales_db.plan_select(sql).node_count()
        assert cacheable < plan_size  # the corpus includes a bare scan

        cache = SubplanCache()
        sales_db.execute(sql, cache=cache)
        hits, misses, _ = cache.counters()
        assert (hits, misses) == (0, cacheable)

    def test_repeat_execution_hits_only_the_root(self, sales_db):
        from repro.engine.executor import SubplanCache

        sql = "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x" \
              " ON s.id = x.store_id GROUP BY s.city"
        cache = SubplanCache()
        first = sales_db.execute(sql, cache=cache)
        _, misses_after_first, _ = cache.counters()
        assert misses_after_first == self.cacheable_count(sales_db, sql)
        second = sales_db.execute(sql, cache=cache)
        hits, misses, _ = cache.counters()
        # Root hit short-circuits the whole tree: one hit, no new misses.
        assert (hits, misses) == (1, misses_after_first)
        assert second.rows == first.rows

    def test_uncacheable_rows_never_stored(self, sales_db):
        from repro.engine.executor import SubplanCache

        cache = SubplanCache()
        sales_db.execute("SELECT city FROM stores WHERE state = 'CA'", cache=cache)
        assert cache.contains(None) is False
        assert len(cache) == cache.counters()[1]  # one entry per miss


class TestHoistedCounterEquivalence:
    """The hot loops batch ``rows_processed`` increments (filter, project,
    distinct, scans, joins, aggregate count exactly their input sizes).
    This differential pins the new accounting to the seed's per-row
    accounting, reimplemented verbatim below."""

    CORPUS = [
        "SELECT city FROM stores WHERE state = 'CA'",
        "SELECT city, opened + 1 FROM stores",
        "SELECT DISTINCT product FROM sales",
        "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
        " ON s.id = x.store_id GROUP BY s.city",
        "SELECT s.city, x.amount FROM stores s LEFT JOIN sales x"
        " ON s.id = x.store_id",
        "SELECT s.city FROM stores s JOIN sales x ON s.id < x.store_id",
        "SELECT product, COUNT(*), SUM(amount) FROM sales GROUP BY product",
        "SELECT city FROM stores ORDER BY city DESC LIMIT 3",
        "SELECT COUNT(*) FROM sales WHERE amount > 10.0",
    ]

    def legacy_executor(self, catalog, context):
        """The seed's per-row accounting, as a differential baseline."""
        from repro.engine import aggregates as agg_lib
        from repro.engine.executor import Executor
        from repro.engine.expressions import compile_expr
        from repro.storage.types import Row

        class LegacyExecutor(Executor):
            def _exec_scan(self, node):
                table = self._catalog.table(node.table)
                positions = [table.schema.position_of(c) for c in node.columns]
                sampler = self._make_sampler(node.table)
                rows: list[Row] = []
                for row in table.scan():
                    self.context.stats.rows_scanned += 1
                    self.context.stats.rows_processed += 1
                    if sampler is not None and not sampler.bernoulli(
                        self.context.sample_rate
                    ):
                        continue
                    rows.append(tuple(row[p] for p in positions))
                return rows

            def _exec_filter(self, node):
                child_rows = self._execute(node.child)
                predicate = compile_expr(node.predicate, node.child.output, self)
                out: list[Row] = []
                for row in child_rows:
                    self.context.stats.rows_processed += 1
                    value = predicate(row)
                    if value is not None and value is not False and value != 0:
                        out.append(row)
                return out

            def _exec_project(self, node):
                child_rows = self._execute(node.child)
                compiled = [
                    compile_expr(e, node.child.output, self) for e in node.exprs
                ]
                out: list[Row] = []
                for row in child_rows:
                    self.context.stats.rows_processed += 1
                    out.append(tuple(fn(row) for fn in compiled))
                return out

            def _exec_hash_join(self, node):
                left_rows = self._execute(node.left)
                right_rows = self._execute(node.right)
                left_keys = [
                    compile_expr(k, node.left.output, self) for k in node.left_keys
                ]
                right_keys = [
                    compile_expr(k, node.right.output, self) for k in node.right_keys
                ]
                residual = (
                    compile_expr(node.residual, node.output, self)
                    if node.residual is not None
                    else None
                )
                build: dict[tuple, list[int]] = {}
                for position, row in enumerate(left_rows):
                    self.context.stats.rows_processed += 1
                    key = tuple(fn(row) for fn in left_keys)
                    if any(part is None for part in key):
                        continue
                    build.setdefault(key, []).append(position)
                matched_left: set[int] = set()
                out: list[Row] = []
                for row in right_rows:
                    self.context.stats.rows_processed += 1
                    key = tuple(fn(row) for fn in right_keys)
                    if any(part is None for part in key):
                        continue
                    for position in build.get(key, ()):
                        combined = left_rows[position] + row
                        if residual is not None:
                            verdict = residual(combined)
                            if verdict is None or verdict is False or verdict == 0:
                                continue
                        matched_left.add(position)
                        out.append(combined)
                if node.kind == "LEFT":
                    null_pad = (None,) * len(node.right.output)
                    out.extend(
                        left_rows[i] + null_pad
                        for i in range(len(left_rows))
                        if i not in matched_left
                    )
                return out

            def _exec_nested_loop(self, node):
                left_rows = self._execute(node.left)
                right_rows = self._execute(node.right)
                condition = (
                    compile_expr(node.condition, node.output, self)
                    if node.condition is not None
                    else None
                )
                out: list[Row] = []
                null_pad = (None,) * len(node.right.output)
                for left_row in left_rows:
                    matched = False
                    for right_row in right_rows:
                        self.context.stats.rows_processed += 1
                        combined = left_row + right_row
                        if condition is not None:
                            verdict = condition(combined)
                            if verdict is None or verdict is False or verdict == 0:
                                continue
                        matched = True
                        out.append(combined)
                    if node.kind == "LEFT" and not matched:
                        out.append(left_row + null_pad)
                return out

            def _exec_aggregate(self, node):
                child_rows = self._execute(node.child)
                group_fns = [
                    compile_expr(e, node.child.output, self)
                    for e in node.group_exprs
                ]

                def compile_arg(expr):
                    return compile_expr(expr, node.child.output, self)

                groups: dict[tuple, list] = {}
                order: list[tuple] = []
                for row in child_rows:
                    self.context.stats.rows_processed += 1
                    key = tuple(fn(row) for fn in group_fns)
                    accumulators = groups.get(key)
                    if accumulators is None:
                        accumulators = [
                            agg_lib.make_accumulator(call, compile_arg)
                            for call in node.agg_calls
                        ]
                        groups[key] = accumulators
                        order.append(key)
                    for accumulator in accumulators:
                        accumulator.add(row)
                if not groups and not node.group_exprs:
                    accumulators = [
                        agg_lib.make_accumulator(call, compile_arg)
                        for call in node.agg_calls
                    ]
                    groups[()] = accumulators
                    order.append(())
                scale = (
                    1.0 / self.context.sample_rate
                    if self.context.sample_rate < 1.0
                    else 1.0
                )
                self._estimate_errors = {}
                out: list[Row] = []
                for key in order:
                    values = list(key)
                    for name, accumulator in zip(node.agg_names, groups[key]):
                        value, error = accumulator.result(scale)
                        values.append(value)
                        if error is not None:
                            self._estimate_errors[name] = max(
                                self._estimate_errors.get(name, 0.0), error
                            )
                    out.append(tuple(values))
                return out

            def _exec_distinct(self, node):
                child_rows = self._execute(node.child)
                seen: set[Row] = set()
                out: list[Row] = []
                for row in child_rows:
                    self.context.stats.rows_processed += 1
                    if row not in seen:
                        seen.add(row)
                        out.append(row)
                return out

        return LegacyExecutor(catalog, context)

    @pytest.mark.parametrize("sample_rate", [1.0, 0.25])
    def test_counters_match_legacy_per_row_accounting(self, sales_db, sample_rate):
        from dataclasses import asdict

        from repro.engine.executor import ExecContext, Executor

        for sql in self.CORPUS:
            plan = sales_db.plan_select(sql)
            current_context = ExecContext(sample_rate=sample_rate, sample_seed=11)
            legacy_context = ExecContext(sample_rate=sample_rate, sample_seed=11)
            current = Executor(sales_db.catalog, current_context).run(plan)
            legacy = self.legacy_executor(sales_db.catalog, legacy_context).run(plan)
            assert current.rows == legacy.rows, sql
            assert asdict(current_context.stats) == asdict(legacy_context.stats), sql


class TestCompiledExpressionMemo:
    """Repeated probes of the same plan must stop recompiling identical
    expression trees: compilation happens once per (plan-node strict
    fingerprint, slot) process-wide, except for subquery-bearing
    expressions, which capture executor state and always compile fresh."""

    def test_repeated_execution_compiles_nothing_new(self, sales_db):
        from repro.engine.executor import EXPR_MEMO_STATS, clear_expr_memo

        sql = (
            "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
            " ON s.id = x.store_id WHERE x.amount > 1.0 GROUP BY s.city"
            " ORDER BY s.city"
        )
        clear_expr_memo()
        first = sales_db.execute(sql)
        EXPR_MEMO_STATS.reset()
        second = sales_db.execute(sql)
        assert second.rows == first.rows
        assert EXPR_MEMO_STATS.compilations == 0
        assert EXPR_MEMO_STATS.hits > 0

    def test_equivalent_plans_share_compiled_expressions(self, sales_db):
        """Alias renaming does not change the strict fingerprint, so the
        re-aliased twin reuses every compiled expression."""
        from repro.engine.executor import EXPR_MEMO_STATS, clear_expr_memo

        clear_expr_memo()
        baseline = sales_db.execute(
            "SELECT a.city FROM stores a WHERE a.state = 'CA'"
        )
        EXPR_MEMO_STATS.reset()
        renamed = sales_db.execute(
            "SELECT b.city FROM stores b WHERE b.state = 'CA'"
        )
        assert renamed.rows == baseline.rows
        assert EXPR_MEMO_STATS.compilations == 0

    def test_subquery_expressions_compile_fresh_every_run(self, sales_db):
        from repro.engine.executor import EXPR_MEMO_STATS, clear_expr_memo

        sql = "SELECT city FROM stores WHERE id = (SELECT MIN(id) FROM stores)"
        clear_expr_memo()
        first = sales_db.execute(sql)
        EXPR_MEMO_STATS.reset()
        second = sales_db.execute(sql)
        assert second.rows == first.rows == [("Berkeley",)]
        # The subquery-bearing predicate recompiled; everything else hit.
        assert EXPR_MEMO_STATS.compilations >= 1
        assert EXPR_MEMO_STATS.hits >= 1

    def test_memo_is_bounded(self, sales_db):
        from repro.engine import executor as executor_module

        executor_module.clear_expr_memo()
        for i in range(30):
            sales_db.execute(f"SELECT city FROM stores WHERE opened > {i}")
        with executor_module._EXPR_MEMO_LOCK:
            assert len(executor_module._EXPR_MEMO) <= executor_module._EXPR_MEMO_MAX
