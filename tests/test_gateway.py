"""Differential and API tests for the streaming admission gateway.

The gateway's contract: for any probe stream, gateway-served responses
have byte-identical per-query rows and statuses to serial ``submit`` of
the same probes in admission order — at every worker count, and *no
matter how arrivals split into admission windows* (``max_batch`` /
``max_wait`` / jitter only move work between windows; session-lived
history and caches carry sharing across the boundaries). The suite is
parametrized over worker counts and window shapes, and CI re-runs it
unmodified under ``REPRO_SCHEDULER_WORKERS`` 1/8 with window-timing
jitter (``REPRO_GATEWAY_JITTER``).
"""

from __future__ import annotations

import asyncio
import threading
from concurrent.futures import CancelledError
from concurrent.futures import TimeoutError as FuturesTimeout

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from test_scheduler import assert_same_outcomes, build_db, overlapping_probes


def stream_and_gather(system, probes, session=None):
    """Stream probes in submission order; gather responses via tickets."""
    submit = session.submit if session is not None else system.gateway.submit
    tickets = [submit(probe) for probe in probes]
    system.gateway.flush()
    responses = [ticket.result(timeout=60.0) for ticket in tickets]
    system.gateway.close()
    return responses


def mixed_stream():
    """A heterogeneous stream: errors, pruning, sampling, termination."""

    def stop_after_first(results):
        return any(r.rows for r in results)

    return [
        Probe.sql("SELECT * FROM ghost_table"),
        Probe(
            queries=("SELECT COUNT(*) FROM sales", "SELECT COUNT(*) FROM stores"),
            brief=Brief(goal="exact answer", complete_k_of_n=1),
            agent_id="pruner",
        ),
        *overlapping_probes(4),
        Probe(
            queries=(
                "SELECT COUNT(*) FROM sales WHERE amount > 5.0",
                "SELECT product FROM sales WHERE amount > 5.0",
            ),
            brief=Brief(accuracy=0.3),
            agent_id="explorer",
        ),
        Probe(
            queries=(
                "SELECT COUNT(*) FROM sales WHERE product = 'coffee'",
                "SELECT COUNT(*) FROM sales WHERE product = 'tea'",
                "SELECT COUNT(*) FROM stores",
            ),
            termination=stop_after_first,
            agent_id="terminator",
        ),
    ]


class TestStreamingDifferential:
    """Streamed admission vs serial submit, across window shapes."""

    @pytest.mark.parametrize("workers", [1, 3])
    @pytest.mark.parametrize(
        "max_batch,max_wait",
        [
            (64, 30.0),  # one big window (flush closes it)
            (3, 30.0),  # size-split windows
            (1, 0.0),  # every probe its own window
            (64, 0.0),  # timer-split windows (racy sizes, same answers)
        ],
    )
    def test_streamed_matches_serial(self, workers, max_batch, max_wait):
        serial_system = AgentFirstDataSystem(build_db(), workers=workers)
        serial_responses = [serial_system.submit(p) for p in mixed_stream()]

        stream_system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(
                gateway_max_batch=max_batch, gateway_max_wait=max_wait
            ),
            workers=workers,
        )
        stream_responses = stream_and_gather(stream_system, mixed_stream())
        assert_same_outcomes(serial_responses, stream_responses)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_streamed_matches_serial_with_mqo_disabled(self, workers):
        config = SystemConfig(enable_mqo=False, gateway_max_batch=2)
        serial_system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(enable_mqo=False), workers=workers
        )
        serial_responses = [serial_system.submit(p) for p in overlapping_probes(4)]
        stream_system = AgentFirstDataSystem(build_db(), config=config, workers=workers)
        stream_responses = stream_and_gather(stream_system, overlapping_probes(4))
        assert_same_outcomes(serial_responses, stream_responses)
        assert sum(r.rows_processed for r in stream_responses) == sum(
            r.rows_processed for r in serial_responses
        )

    def test_window_split_is_invisible_in_rows_and_work(self):
        """The same stream served as one window vs many: identical rows,
        statuses, and row-work accounting (history + the session-lived
        cache carry sharing across window boundaries)."""
        one_window = AgentFirstDataSystem(build_db(), workers=1)
        one_responses = one_window.submit_many(overlapping_probes(8))
        split_system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=3, gateway_max_wait=30.0),
            workers=1,
        )
        split_responses = stream_and_gather(split_system, overlapping_probes(8))
        assert_same_outcomes(one_responses, split_responses)
        assert sum(r.rows_processed for r in split_responses) == sum(
            r.rows_processed for r in one_responses
        )

    def test_turns_follow_admission_order(self):
        system = AgentFirstDataSystem(build_db())
        responses = stream_and_gather(system, overlapping_probes(5))
        assert [r.turn for r in responses] == [1, 2, 3, 4, 5]


class TestAdmissionWindows:
    def test_max_batch_bounds_window_size(self):
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=4, gateway_max_wait=30.0),
        )
        responses = stream_and_gather(system, overlapping_probes(10))
        assert len(responses) == 10
        stats = system.gateway.stats()
        assert stats["probes_streamed"] == 10
        assert stats["max_window_size"] <= 4
        assert stats["windows_streamed"] >= 3

    def test_max_wait_closes_partial_window(self):
        """A lone probe must not wait forever for max_batch company."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=64, gateway_max_wait=0.01),
        )
        ticket = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
        response = ticket.result(timeout=30.0)  # no flush: the timer fires
        assert response.outcomes[0].status == "ok"
        system.gateway.close()

    def test_submit_many_is_a_one_window_shim(self):
        system = AgentFirstDataSystem(build_db())
        system.submit_many(overlapping_probes(3))
        system.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
        assert system.gateway.windows_direct == 2
        assert system.gateway.windows_streamed == 0
        # The shim path never starts the admission loop thread.
        assert system.gateway._thread is None

    def test_uncoordinated_threads_share_work(self):
        """The tentpole scenario: independently-arriving agents (threads
        that never coordinate) get cross-agent sharing because the
        gateway — not a caller — forms the batch."""
        n_agents = 12
        probes = overlapping_probes(n_agents)
        reference = build_db()
        expected = {
            probe.agent_id: [reference.execute(sql).rows for sql in probe.queries]
            for probe in probes
        }

        system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(gateway_max_wait=0.05)
        )
        responses: dict[str, object] = {}
        errors: list[Exception] = []
        barrier = threading.Barrier(n_agents)

        def agent_main(probe):
            try:
                session = system.session(agent_id=probe.agent_id)
                barrier.wait()
                responses[probe.agent_id] = session.submit(
                    Probe(queries=probe.queries)
                ).result(timeout=60.0)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=agent_main, args=(probe,)) for probe in probes
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        for probe in probes:
            got = [o.result.rows for o in responses[probe.agent_id].outcomes]
            assert got == expected[probe.agent_id]

        # Sharing actually happened: the swarm processed fewer rows than
        # the same probes served by independent per-agent systems.
        independent = sum(
            AgentFirstDataSystem(build_db()).submit(p).rows_processed for p in probes
        )
        streamed = sum(r.rows_processed for r in responses.values())
        assert streamed < independent
        assert system.gateway.stats()["probes_streamed"] == n_agents
        system.gateway.close()


class TestProbeTickets:
    def make_slow_gateway_system(self):
        return AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=100, gateway_max_wait=30.0),
        )

    def test_ticket_lifecycle(self):
        system = self.make_slow_gateway_system()
        ticket = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert not ticket.done()
        system.gateway.flush()
        response = ticket.result(timeout=30.0)
        assert ticket.done() and not ticket.cancelled()
        assert response.outcomes[0].status == "ok"
        assert ticket.cancel() is False  # too late: already served
        system.gateway.close()

    def test_cancel_before_admission(self):
        system = self.make_slow_gateway_system()
        keep = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        drop = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
        assert drop.cancel() is True
        assert drop.cancelled() and drop.done()
        with pytest.raises(CancelledError):
            drop.result(timeout=1.0)
        system.gateway.flush()
        assert keep.result(timeout=30.0).outcomes[0].status == "ok"
        # The cancelled probe never consumed a turn: serial equivalence is
        # against the admitted stream only.
        assert keep.result().turn == 1
        system.gateway.close()

    def hold_serving(self, system, monkeypatch):
        """Block ``_serve_batch`` so a window sits admitted-but-unserved."""
        entered = threading.Event()
        release = threading.Event()
        original = system._serve_batch

        def slow(probes):
            entered.set()
            release.wait(timeout=30.0)
            return original(probes)

        monkeypatch.setattr(system, "_serve_batch", slow)
        return entered, release

    def test_cancel_after_admission_is_deterministically_false(
        self, monkeypatch
    ):
        """The racing window: a probe pulled into a window but not yet
        served. ``cancel()`` used to return True here while the window
        served the probe anyway (burning a turn for a caller who thinks
        it never ran); admission now marks the future RUNNING, so the
        answer is a deterministic False."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=1, gateway_max_wait=0.01),
        )
        entered, release = self.hold_serving(system, monkeypatch)
        ticket = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        system.gateway.flush()
        assert entered.wait(timeout=30.0)
        assert ticket.admitted()
        assert ticket.cancel() is False  # in-flight: refusal, not a lie
        assert not ticket.cancelled()
        release.set()
        response = ticket.result(timeout=30.0)
        assert response.outcomes[0].status == "ok"
        assert response.turn == 1
        system.gateway.close()

    def test_result_timeout_leaves_ticket_servable(self, monkeypatch):
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=1, gateway_max_wait=0.01),
        )
        entered, release = self.hold_serving(system, monkeypatch)
        ticket = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        system.gateway.flush()
        assert entered.wait(timeout=30.0)
        with pytest.raises(FuturesTimeout):
            ticket.result(timeout=0.05)
        release.set()  # an expired wait is not a cancel: the probe finishes
        assert ticket.result(timeout=30.0).outcomes[0].status == "ok"
        system.gateway.close()

    def test_cancel_hammer_never_strands_or_double_serves(self):
        """Cancels racing admission from another thread: every ticket ends
        exactly one way — CancelledError before it burned a turn, or a
        served response — and the served turns stay contiguous."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=2, gateway_max_wait=0.001),
        )
        tickets = [
            system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
            for _ in range(24)
        ]
        canceller = threading.Thread(
            target=lambda: [t.cancel() for t in reversed(tickets)]
        )
        canceller.start()
        system.gateway.flush()
        canceller.join(timeout=30.0)
        served = 0
        for ticket in tickets:
            # The canceller has finished: every ticket is either cancelled
            # for good or owed a served response — nothing may strand.
            if ticket.cancelled():
                with pytest.raises(CancelledError):
                    ticket.result(timeout=5.0)
            else:
                response = ticket.result(timeout=30.0)
                assert response.outcomes[0].status in ("ok", "from_history")
                assert response.outcomes[0].result.rows == [(3,)]
                served += 1
            assert ticket.done()
        turns = sorted(
            t.result().turn for t in tickets if not t.cancelled()
        )
        assert turns == list(range(1, served + 1))
        system.gateway.close()

    def test_submit_after_close_raises(self):
        system = AgentFirstDataSystem(build_db())
        system.gateway.close()
        with pytest.raises(RuntimeError, match="closed"):
            system.gateway.submit(Probe.sql("SELECT 1"))
        # The raise is the structured ReproError, not a bare RuntimeError.
        from repro.errors import GatewayClosed, ReproError

        with pytest.raises(GatewayClosed) as exc_info:
            system.gateway.submit(Probe.sql("SELECT 1"))
        assert isinstance(exc_info.value, ReproError)
        assert "resubmit on a live system" in str(exc_info.value)

    def test_close_resolves_stranded_tickets_with_structured_error(
        self, monkeypatch
    ):
        """Tickets still queued when the loop goes down (here: the serve
        path wedged past the join timeout) must resolve with a
        ``GatewayClosed`` error *response* — ``result()`` never blocks on
        shutdown, and every query gets an ``"error"`` outcome that names
        the cause."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=1, gateway_max_wait=0.01),
        )
        entered, release = TestProbeTickets().hold_serving(system, monkeypatch)
        served = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        stranded = [
            system.gateway.submit(
                Probe(queries=("SELECT COUNT(*) FROM stores", "SELECT 1"))
            )
            for _ in range(2)
        ]
        system.gateway.flush()
        assert entered.wait(timeout=30.0)  # first window wedged in serving
        system.gateway.close(timeout=0.2)  # join times out; queue drains
        for ticket in stranded:
            response = ticket.result(timeout=5.0)  # resolved, not blocked
            assert [o.status for o in response.outcomes] == ["error", "error"]
            assert "gateway is closed" in response.outcomes[0].reason
            assert any("gateway is closed" in s for s in response.steering)
            assert response.turn == 0  # never served: no turn burned
        assert system.gateway.stats()["probes_closed_unserved"] == 2
        release.set()  # the wedged window still finishes its own ticket
        assert served.result(timeout=30.0).outcomes[0].status == "ok"

    def test_submit_racing_close_never_strands_a_ticket(self):
        """The regression this PR fixes: submits racing ``close()`` from
        other threads either raise ``GatewayClosed`` or get a ticket that
        resolves promptly — with a served response or a structured
        closed-error response, never a hang."""
        from repro.errors import GatewayClosed

        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=4, gateway_max_wait=0.001),
        )
        tickets: list = []
        rejected = []
        errors = []
        start = threading.Barrier(9)

        def submitter():
            try:
                start.wait()
                for _ in range(16):
                    try:
                        tickets.append(
                            system.gateway.submit(
                                Probe.sql("SELECT COUNT(*) FROM stores")
                            )
                        )
                    except GatewayClosed:
                        rejected.append(1)
            except Exception as exc:  # surfaced after join
                errors.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(8)]
        for thread in threads:
            thread.start()
        start.wait()
        system.gateway.close()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        served = closed = 0
        for ticket in tickets:
            response = ticket.result(timeout=30.0)
            statuses = {o.status for o in response.outcomes}
            if statuses == {"error"}:
                assert "gateway is closed" in response.outcomes[0].reason
                closed += 1
            else:
                assert statuses <= {"ok", "from_history"}
                served += 1
        # Full accounting: every accepted submit resolved one way.
        assert served + closed == len(tickets)
        assert len(tickets) + len(rejected) == 8 * 16
        stats = system.gateway.stats()
        assert stats["probes_closed_unserved"] == closed
        assert stats["probes_streamed"] == served

    def test_stats_stay_monotone_and_consistent_under_concurrency(self):
        """``stats()`` sampled while submit/flush/close race from other
        threads: monotone counters never step backwards, and the final
        snapshot accounts for every accepted probe exactly once."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(gateway_max_batch=4, gateway_max_wait=0.001),
        )
        monotone_keys = (
            "windows_streamed",
            "probes_streamed",
            "probes_offloaded",
            "overload_windows",
            "probes_degraded",
            "probes_closed_unserved",
            # The shard matchmaker's capacity pair must be stable under
            # the same storm: total windows served (either path) and the
            # peak admission-queue depth only ever grow.
            "windows_served",
            "queue_depth_peak",
        )
        violations = []
        stop_sampling = threading.Event()

        def sampler():
            last = {key: 0 for key in monotone_keys}
            while not stop_sampling.is_set():
                snapshot = system.gateway.stats()
                for key in monotone_keys:
                    if snapshot[key] < last[key]:
                        violations.append((key, last[key], snapshot[key]))
                    last[key] = snapshot[key]

        def flusher():
            while not stop_sampling.is_set():
                system.gateway.flush()

        watchers = [
            threading.Thread(target=sampler),
            threading.Thread(target=flusher),
        ]
        for watcher in watchers:
            watcher.start()
        tickets = []
        submitters = [
            threading.Thread(
                target=lambda: tickets.extend(
                    system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
                    for _ in range(24)
                )
            )
            for _ in range(4)
        ]
        for submitter in submitters:
            submitter.start()
        for submitter in submitters:
            submitter.join(timeout=30.0)
        responses = [t.result(timeout=60.0) for t in tickets]
        system.gateway.close()
        stop_sampling.set()
        for watcher in watchers:
            watcher.join(timeout=30.0)
        assert not violations
        assert len(responses) == 4 * 24
        stats = system.gateway.stats()
        assert stats["probes_streamed"] + stats["probes_closed_unserved"] == 96
        assert stats["pending"] == 0
        assert stats["windows_streamed"] >= 96 // 4  # max_batch bounds windows
        assert stats["windows_served"] == (
            stats["windows_streamed"] + stats["windows_direct"]
        )
        assert stats["queue_depth_peak"] >= 1  # something queued at some point

    def test_idle_admission_thread_retires_and_restarts(self):
        """Long-lived serving systems must not pin an idle thread per
        database forever; the loop retires after ``idle_stop`` and a
        later streamed submit restarts it transparently."""
        system = AgentFirstDataSystem(
            build_db(), config=SystemConfig(gateway_max_wait=0.005)
        )
        system.gateway.idle_stop = 0.05
        first = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM sales"))
        assert first.result(timeout=30.0).outcomes[0].status == "ok"
        thread = system.gateway._thread
        assert thread is not None
        thread.join(timeout=30.0)  # retires once idle past idle_stop
        assert system.gateway._thread is None
        second = system.gateway.submit(Probe.sql("SELECT COUNT(*) FROM stores"))
        assert second.result(timeout=30.0).outcomes[0].status == "ok"
        assert second.result().turn == 2  # same system state, new thread
        system.gateway.close()


class TestAgentSessions:
    def test_sticky_identity_without_probe_plumbing(self):
        system = AgentFirstDataSystem(build_db())
        alice = system.session(agent_id="alice", principal="alice-p")
        bob = system.session(agent_id="bob")
        sql = "SELECT COUNT(*) FROM sales WHERE product = 'coffee'"
        first = alice.submit(Probe(queries=(sql,)))  # no agent_id anywhere
        system.gateway.flush()
        first.result(timeout=30.0)
        second = bob.submit(Probe(queries=(sql,)))
        system.gateway.flush()
        outcome = second.result(timeout=30.0).outcomes[0]
        assert outcome.status == "from_history"
        assert "alice" in outcome.reason  # history attribution saw the session id
        system.gateway.close()

    def test_probe_identity_beats_session_identity(self):
        system = AgentFirstDataSystem(build_db())
        session = system.session(agent_id="session-id")
        effective = session.effective(Probe.sql("SELECT 1"))
        assert effective.agent_id == "session-id"
        explicit = session.effective(
            Probe(queries=("SELECT 1",), agent_id="explicit")
        )
        assert explicit.agent_id == "explicit"

    def test_brief_defaults_merge_fieldwise(self):
        system = AgentFirstDataSystem(build_db())
        session = system.session(
            defaults=Brief(goal="explore the schema", accuracy=0.3, max_cost=9.0)
        )
        merged = session.effective(Probe(queries=("SELECT 1",))).brief
        assert merged.goal == "explore the schema"
        assert merged.accuracy == 0.3
        assert merged.max_cost == 9.0
        overridden = session.effective(
            Probe(queries=("SELECT 1",), brief=Brief(goal="final answer"))
        ).brief
        assert overridden.goal == "final answer"  # probe wins where it speaks
        assert overridden.accuracy == 0.3  # defaults fill the silence

    def test_session_brief_defaults_drive_satisficing(self):
        """An accuracy default on the session makes bare SQL approximate."""
        system = AgentFirstDataSystem(build_db())
        explorer = system.session(agent_id="explorer", defaults=Brief(accuracy=0.3))
        ticket = explorer.submit(
            Probe(queries=("SELECT COUNT(*) FROM sales WHERE amount > 5.0",))
        )
        system.gateway.flush()
        assert ticket.result(timeout=30.0).outcomes[0].status == "approximate"
        system.gateway.close()

    def test_session_accounting(self):
        system = AgentFirstDataSystem(build_db())
        session = system.session(agent_id="bean-counter")
        tickets = [
            session.submit(Probe.sql("SELECT COUNT(*) FROM sales")),
            session.submit(Probe.sql("SELECT COUNT(*) FROM stores")),
        ]
        system.gateway.flush()
        responses = [t.result(timeout=30.0) for t in tickets]
        assert session.probes_submitted == 2
        assert session.turns_served == 2
        assert session.queries_served == 2
        assert session.rows_processed == sum(r.rows_processed for r in responses)
        assert session.spent_cost > 0
        assert session.last_turn == responses[-1].turn
        assert "bean-counter" in session.describe()
        system.gateway.close()


class TestAsyncSurface:
    def test_asubmit_and_serve(self):
        serial_system = AgentFirstDataSystem(build_db())
        serial_responses = [serial_system.submit(p) for p in overlapping_probes(4)]

        async def main():
            system = AgentFirstDataSystem(
                build_db(), config=SystemConfig(gateway_max_wait=0.005)
            )
            session = system.session(agent_id="async-agent")
            first = await session.asubmit(Probe.sql("SELECT COUNT(*) FROM sales"))
            assert first.outcomes[0].status == "ok"

            async def arrivals():
                for probe in overlapping_probes(4):
                    yield probe

            streamed = [r async for r in system.gateway.serve(arrivals())]
            system.gateway.close()
            return streamed

        streamed = asyncio.run(main())
        # The async-served stream matches serial submission of the same
        # probes (the asubmit warm-up occupies turn 1, so compare rows and
        # statuses, which are turn-independent here).
        assert len(streamed) == 4
        for serial, async_served in zip(serial_responses, streamed):
            assert [o.status for o in serial.outcomes] == [
                o.status for o in async_served.outcomes
            ]
            assert [
                o.result.rows if o.result is not None else None
                for o in serial.outcomes
            ] == [
                o.result.rows if o.result is not None else None
                for o in async_served.outcomes
            ]

    def test_serve_propagates_producer_errors(self):
        """A failing probe producer must surface its exception to the
        consumer instead of leaving it blocked on the queue forever."""

        async def main():
            system = AgentFirstDataSystem(
                build_db(), config=SystemConfig(gateway_max_wait=0.005)
            )

            async def arrivals():
                yield Probe.sql("SELECT COUNT(*) FROM sales")
                raise ValueError("producer broke mid-stream")

            served = []
            with pytest.raises(ValueError, match="producer broke"):
                async for response in system.gateway.serve(arrivals()):
                    served.append(response)
            system.gateway.close()
            return served

        served = asyncio.run(asyncio.wait_for(main(), timeout=30.0))
        # The probe submitted before the failure was still served.
        assert len(served) == 1
        assert served[0].outcomes[0].status == "ok"

    def test_serve_accepts_plain_iterables(self):
        async def main():
            system = AgentFirstDataSystem(
                build_db(), config=SystemConfig(gateway_max_wait=0.005)
            )
            values = [
                response.first_result().first_value()
                async for response in system.gateway.serve(
                    [
                        Probe.sql("SELECT COUNT(*) FROM sales"),
                        Probe.sql("SELECT COUNT(*) FROM stores"),
                    ]
                )
            ]
            system.gateway.close()
            return values

        assert asyncio.run(main()) == [900, 3]


class TestSharedServingPathsStillDifferential:
    """The rewired agent runners stream through sessions; their results
    must still match the old hand-assembled batching exactly."""

    def test_parallel_attempts_unchanged_by_streaming(self):
        from repro.agents.model import GPT_4O_MINI_SIM
        from repro.agents.parallel import run_parallel_attempts
        from repro.workloads.bird import BirdTaskPool

        task = BirdTaskPool(seed=5).generate(1)[0]
        first = run_parallel_attempts(task, GPT_4O_MINI_SIM, 8, seed=3)
        again = run_parallel_attempts(task, GPT_4O_MINI_SIM, 8, seed=3)
        assert [a.sql for a in first.attempts] == [a.sql for a in again.attempts]
        assert [a.signature for a in first.attempts] == [
            a.signature for a in again.attempts
        ]
        assert first.picked_signature == again.picked_signature
