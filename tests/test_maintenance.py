"""Sleeper-agent maintenance runtime: differential + unit coverage.

The headline contract: with the maintenance runtime ON — materialized
views being built and served, auxiliary indexes rewriting scan paths,
statistics refreshed, caches pre-warmed — per-query rows, statuses,
reasons (history attribution), and declared order are **byte-identical**
to a maintenance-off run, including across writes that invalidate views
and indexes mid-workload, at every worker count and on either dispatch
backend (CI reruns this module under ``REPRO_SCHEDULER_WORKERS`` /
``REPRO_SCHEDULER_BACKEND``).
"""

from __future__ import annotations

import time

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.maintenance import (
    MaintenanceConfig,
    MaintenanceRuntime,
    resolve_maintenance_enabled,
)
from repro.plan import logical
from repro.plan.fingerprint import fingerprints

JOIN = (
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)
#: The same work with the projection reordered: a lenient (not strict)
#: twin of JOIN, closable by a pure output-column permutation.
JOIN_REORDERED = (
    "SELECT SUM(x.amount), s.city FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city"
)
EQ_FILTER = "SELECT COUNT(*) FROM sales WHERE store_id = {k}"
RANGE_ROWS = "SELECT id, amount FROM sales WHERE amount > {t}"


def build_db(rows: int = 600, wal_dir: str | bool | None = None) -> Database:
    db = Database("maint", wal_dir=wal_dir)
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','CA'),(2,'Oakland','CA'),"
        "(3,'Seattle','WA'),(4,'Austin','TX')"
    )
    db.insert_rows(
        "sales",
        [
            (i, 1 + i % 4, ("coffee", "tea", "pastry")[i % 3], float(i % 23))
            for i in range(rows)
        ],
    )
    return db


def maintenance_config(**overrides) -> MaintenanceConfig:
    """Thresholds low enough that a short workload triggers every job."""
    defaults = dict(
        view_min_occurrences=2, index_min_occurrences=2, index_min_rows=10
    )
    defaults.update(overrides)
    return MaintenanceConfig(**defaults)


def make_system(
    maintenance: bool, workers: int | None = None, backend: str | None = None
) -> AgentFirstDataSystem:
    config = SystemConfig(
        enable_maintenance=maintenance,
        maintenance=maintenance_config() if maintenance else None,
        dispatch_backend=backend,
    )
    return AgentFirstDataSystem(build_db(), config=config, workers=workers)


def turn_probes(n_agents: int, turn: int) -> list[Probe]:
    """A swarm turn mixing hot shared work with per-agent variation."""
    probes = []
    for agent in range(n_agents):
        queries = [
            JOIN if agent % 3 else JOIN_REORDERED,
            EQ_FILTER.format(k=1 + agent % 4),
            RANGE_ROWS.format(t=float(3 + (agent + turn) % 5)),
        ]
        probes.append(
            Probe(
                queries=tuple(queries),
                brief=Brief(goal="compute the exact answer"),
                agent_id=f"agent-{agent}",
            )
        )
    return probes


def signature(responses) -> list:
    """Everything the byte-identity contract covers, per probe."""
    out = []
    for response in responses:
        out.append(
            [
                (
                    outcome.sql,
                    outcome.status,
                    outcome.reason,
                    outcome.query_index,
                    outcome.sample_rate,
                    None if outcome.result is None else outcome.result.columns,
                    None if outcome.result is None else outcome.result.rows,
                )
                for outcome in response.outcomes
            ]
        )
    return out


def run_script(system: AgentFirstDataSystem, script: list) -> list:
    """Drive one system through a workload script; collect signatures.

    Steps: ``("turn", n_agents, turn_no)`` serves a swarm batch,
    ``("sql", stmt)`` runs a write, ``("maintain",)`` gives the
    maintenance runtime an idle window (a no-op on maintenance-off
    systems, keeping the two sides' serving histories aligned).
    """
    signatures = []
    for step in script:
        if step[0] == "turn":
            responses = system.submit_many(turn_probes(step[1], step[2]))
            signatures.append(signature(responses))
        elif step[0] == "sql":
            system.db.execute(step[1])
        elif step[0] == "maintain":
            system.maintenance.run_pending()
        else:  # pragma: no cover - script typo guard
            raise AssertionError(step)
    return signatures


#: Repeated hot turns with invalidating writes mid-workload: the views
#: and indexes built after turn 2 are invalidated by the UPDATE/DELETE
#: burst, rebuilt, and invalidated again.
DIFFERENTIAL_SCRIPT = [
    ("turn", 6, 0),
    ("maintain",),
    ("turn", 6, 1),
    ("maintain",),
    ("sql", "INSERT INTO sales VALUES (9001, 2, 'tea', 7.5)"),
    ("turn", 6, 2),
    ("maintain",),
    ("turn", 6, 3),
    ("sql", "UPDATE sales SET amount = 11.0 WHERE id = 9001"),
    ("sql", "DELETE FROM sales WHERE id = 3"),
    ("maintain",),
    ("turn", 6, 4),
    ("maintain",),
    ("turn", 6, 5),
]


class TestMaintenanceDifferential:
    @pytest.mark.parametrize("workers", [None, 1, 2])
    def test_byte_identical_across_writes(self, workers):
        on = make_system(True, workers=workers)
        off = make_system(False, workers=workers)
        got = run_script(on, DIFFERENTIAL_SCRIPT)
        expected = run_script(off, DIFFERENTIAL_SCRIPT)
        assert got == expected
        # The run must actually have exercised the runtime, or the
        # equality above proves nothing.
        assert on.maintenance.views_built > 0
        assert on.maintenance.indexes_built > 0
        assert on.maintenance.stats_refreshes > 0

    def test_byte_identical_on_process_backend(self):
        on = make_system(True, workers=2, backend="process")
        off = make_system(False, workers=2, backend="process")
        script = DIFFERENTIAL_SCRIPT[:7]  # spawned pools are slow; one burst
        try:
            assert run_script(on, script) == run_script(off, script)
            assert on.maintenance.views_built > 0
        finally:
            on.close()
            off.close()

    def test_sampled_probes_never_served_from_views(self):
        """Approximate runs must sample real scans, not full view rows."""
        on = make_system(True, workers=1)
        off = make_system(False, workers=1)
        exact = Probe(queries=(JOIN,), brief=Brief(goal="exact answer"))
        sampled = Probe(
            queries=(
                "SELECT COUNT(*), SUM(amount) FROM sales WHERE amount > 2.0",
            ),
            brief=Brief(goal="compute the answer", accuracy=0.25),
        )
        for system in (on, off):
            for _ in range(3):
                system.submit(exact)
            system.maintenance.run_pending()
        got = [on.submit(sampled)]
        expected = [off.submit(sampled)]
        assert signature(got) == signature(expected)
        assert got[0].outcomes[0].status == "approximate"

    def test_termination_and_pruning_unchanged(self):
        def stop_after_one(results):
            return len(results) >= 1

        probe = Probe(
            queries=(JOIN, EQ_FILTER.format(k=1), JOIN),
            brief=Brief(goal="exact answer"),
            termination=stop_after_one,
        )
        script_probe = Probe(
            queries=(JOIN,),
            brief=Brief(goal="exact answer", max_cost=0.5),
        )
        on = make_system(True, workers=1)
        off = make_system(False, workers=1)
        for system in (on, off):
            for _ in range(3):
                system.submit(Probe(queries=(JOIN,), brief=Brief(goal="exact")))
            system.maintenance.run_pending()
        assert signature([on.submit(probe)]) == signature([off.submit(probe)])
        assert signature([on.submit(script_probe)]) == signature(
            [off.submit(script_probe)]
        )


class TestViewMaterializer:
    def build_warm_system(self) -> AgentFirstDataSystem:
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,), brief=Brief(goal="exact")))
        report = system.maintenance.run_pending()
        assert report.views_built
        return system

    def test_strict_match_rewrites_to_view_scan(self):
        system = self.build_warm_system()
        plan = system.db.plan_select(JOIN)
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert any(isinstance(n, logical.ViewScan) for n in rewritten.walk())
        # The largest materialized subtree wins: the root itself.
        assert isinstance(rewritten, logical.ViewScan)

    def test_lenient_permutation_served_through_projection(self):
        system = self.build_warm_system()
        plan = system.db.plan_select(JOIN_REORDERED)
        rewritten = system.maintenance.rewrite_for_execution(plan)
        scans = [n for n in rewritten.walk() if isinstance(n, logical.ViewScan)]
        assert scans and scans[0].projection != tuple(range(len(scans[0].projection)))
        # Served rows equal a from-scratch execution, column order included.
        from repro.engine.executor import ExecContext, Executor

        fresh = Executor(system.db.catalog, ExecContext()).run(plan)
        assert scans[0].materialized_rows() == fresh.rows

    def test_write_invalidates_view_until_rebuilt(self):
        system = self.build_warm_system()
        plan = system.db.plan_select(JOIN)
        system.db.execute("INSERT INTO sales VALUES (9002, 1, 'tea', 1.0)")
        # Views were retired eagerly; nothing matches any more.
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert not any(isinstance(n, logical.ViewScan) for n in rewritten.walk())
        report = system.maintenance.run_pending()
        assert report.views_built  # rebuilt against the new data
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert isinstance(rewritten, logical.ViewScan)
        # ... and the rebuilt rows reflect the write.
        from repro.engine.executor import ExecContext, Executor

        fresh = Executor(system.db.catalog, ExecContext()).run(plan)
        assert rewritten.materialized_rows() == fresh.rows

    def test_stale_view_refuses_to_serve_even_if_installed(self):
        """Belt and braces: a view whose stamp trails the catalog is inert
        even when ChangeEvent-based retirement did not fire (e.g. a direct
        table mutation that bypassed the database facade)."""
        system = self.build_warm_system()
        plan = system.db.plan_select(JOIN)
        system.db.catalog.table("sales").insert((9003, 1, "tea", 2.0))
        assert len(system.maintenance.views)  # nobody retired it...
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert not any(  # ...but the version stamp refuses to serve it
            isinstance(n, logical.ViewScan) for n in rewritten.walk()
        )


class TestAutoIndexer:
    def warm(self, queries: list[str]) -> AgentFirstDataSystem:
        system = make_system(True, workers=1)
        for sql in queries:
            system.submit(Probe(queries=(sql,), brief=Brief(goal="exact")))
        return system

    def test_equality_demand_builds_planner_invisible_hash_index(self):
        system = self.warm([EQ_FILTER.format(k=1 + i % 4) for i in range(4)])
        report = system.maintenance.run_pending()
        assert ("sales", "store_id", "hash") in report.indexes_built
        catalog = system.db.catalog
        # Planner-invisible: plans (and their fingerprints) are unchanged.
        assert catalog.hash_index("sales", "store_id") is None
        plan = system.db.plan_select(EQ_FILTER.format(k=2))
        assert not any(isinstance(n, logical.IndexScan) for n in plan.walk())
        # Executor-visible: the execution-time rewrite uses it.
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert any(
            isinstance(n, logical.IndexScan) and n.row_id_order
            for n in rewritten.walk()
        )

    def test_range_demand_builds_sorted_index_preserving_row_order(self):
        system = self.warm([RANGE_ROWS.format(t=float(t)) for t in range(2, 6)])
        report = system.maintenance.run_pending()
        assert ("sales", "amount", "sorted") in report.indexes_built
        plan = system.db.plan_select(RANGE_ROWS.format(t=4.0))
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert any(
            isinstance(n, logical.IndexScan) and not n.is_equality and n.row_id_order
            for n in rewritten.walk()
        )
        from repro.engine.executor import ExecContext, Executor

        catalog = system.db.catalog
        original = Executor(catalog, ExecContext()).run(plan)
        via_index = Executor(catalog, ExecContext()).run(rewritten)
        assert via_index.rows == original.rows  # order included
        assert via_index.stats.rows_processed < original.stats.rows_processed

    def test_direct_table_mutation_disables_stale_auxiliary_index(self):
        system = self.warm([EQ_FILTER.format(k=1) for _ in range(3)])
        system.maintenance.run_pending()
        catalog = system.db.catalog
        assert catalog.auxiliary_hash_index("sales", "store_id") is not None
        catalog.table("sales").insert((9004, 1, "tea", 2.0))  # bypasses catalog
        assert catalog.auxiliary_hash_index("sales", "store_id") is None
        plan = system.db.plan_select(EQ_FILTER.format(k=1))
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert not any(isinstance(n, logical.IndexScan) for n in rewritten.walk())

    def test_stale_index_at_execution_time_degrades_to_scan_not_error(self):
        """A direct table mutation landing *between* rewrite and execution
        must cost speed, never an answer: the rewritten IndexScan falls
        back to the equivalent predicate scan over current data."""
        # Distinct literals: enough demand to mine the columns, but no
        # single query hot enough to become a whole-plan view (which
        # would, correctly, win the rewrite over the index).
        system = self.warm(
            [EQ_FILTER.format(k=1 + i % 4) for i in range(4)]
            + [RANGE_ROWS.format(t=float(t)) for t in range(2, 6)]
        )
        system.maintenance.run_pending()
        catalog = system.db.catalog
        eq_plan = system.db.plan_select(EQ_FILTER.format(k=7))
        range_plan = system.db.plan_select(RANGE_ROWS.format(t=9.0))
        eq_rewritten = system.maintenance.rewrite_for_execution(eq_plan)
        range_rewritten = system.maintenance.rewrite_for_execution(range_plan)
        assert any(isinstance(n, logical.IndexScan) for n in eq_rewritten.walk())
        catalog.table("sales").insert((9104, 1, "tea", 2.5))  # bypasses catalog
        from repro.engine.executor import ExecContext, Executor

        for rewritten, original in ((eq_rewritten, eq_plan), (range_rewritten, range_plan)):
            degraded = Executor(catalog, ExecContext()).run(rewritten)
            fresh = Executor(catalog, ExecContext()).run(original)
            assert degraded.rows == fresh.rows  # current data, order included

    def test_type_mismatched_literals_never_rewritten(self):
        """compare_values raises on TEXT-vs-number (status 'error'
        maintenance-off), while an index lookup would silently answer
        empty — so the rewrite must refuse mis-typed literals and keep
        the statuses byte-identical."""
        on = self.warm([EQ_FILTER.format(k=1) for _ in range(3)])
        on.maintenance.run_pending()
        assert ("sales", "store_id", "hash") in on.db.catalog.auxiliary_index_keys()
        off = make_system(False, workers=1)
        bad_probes = [
            Probe(queries=("SELECT COUNT(*) FROM sales WHERE store_id = 'oops'",)),
            Probe(queries=("SELECT id FROM sales WHERE store_id = 'oops'",)),
        ]
        for probe in bad_probes:
            got, expected = on.submit(probe), off.submit(probe)
            assert got.outcomes[0].status == expected.outcomes[0].status == "error"
            assert got.outcomes[0].reason == expected.outcomes[0].reason
        # ...and the rewrite itself refuses (no IndexScan substituted).
        plan = on.db.plan_select("SELECT id FROM sales WHERE store_id = 'oops'")
        rewritten = on.maintenance.rewrite_for_execution(plan)
        assert not any(isinstance(n, logical.IndexScan) for n in rewritten.walk())

    def test_equality_served_via_auxiliary_sorted_index(self):
        """A column with only a sorted auxiliary index still accelerates
        equality predicates (the branch the planner's rewrite has)."""
        system = self.warm([RANGE_ROWS.format(t=float(t)) for t in range(2, 6)])
        system.maintenance.run_pending()
        assert ("sales", "amount", "sorted") in system.db.catalog.auxiliary_index_keys()
        plan = system.db.plan_select("SELECT id FROM sales WHERE amount = 4.0")
        rewritten = system.maintenance.rewrite_for_execution(plan)
        scans = [n for n in rewritten.walk() if isinstance(n, logical.IndexScan)]
        assert scans and not scans[0].is_equality and scans[0].row_id_order
        from repro.engine.executor import ExecContext, Executor

        catalog = system.db.catalog
        assert (
            Executor(catalog, ExecContext()).run(rewritten).rows
            == Executor(catalog, ExecContext()).run(plan).rows
        )

    def test_tiny_tables_are_never_indexed(self):
        system = make_system(True, workers=1)
        system.config.maintenance.index_min_rows = 10_000
        system.maintenance.config.index_min_rows = 10_000
        for _ in range(4):
            system.submit(Probe(queries=(EQ_FILTER.format(k=1),)))
        report = system.maintenance.run_pending()
        assert not report.indexes_built


class TestStatsAndCachePrewarm:
    def test_write_burst_queues_stats_refresh(self):
        system = make_system(True, workers=1)
        system.db.execute("INSERT INTO sales VALUES (9005, 1, 'tea', 3.0)")
        report = system.maintenance.run_pending()
        assert "sales" in report.stats_refreshed
        # The refreshed stats are cached at the table's current version:
        # the next cost estimate pays nothing.
        key_version, stats = system.db.catalog._stats_cache["sales"]
        assert key_version == system.db.catalog.table("sales").data_version
        assert stats.row_count == system.db.catalog.table("sales").num_rows

    def test_evicted_hot_entries_reinstalled_from_views(self):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,), brief=Brief(goal="exact")))
        system.maintenance.run_pending()
        cache = system.optimizer.cache
        cache.invalidate()  # simulate eviction pressure
        report = system.maintenance.run_pending()
        assert report.cache_entries_rewarmed > 0
        from repro.engine.executor import subplan_cache_key

        view = system.maintenance.views.snapshot()[0]
        assert cache.contains(subplan_cache_key(view.plan, 1.0, 0))


class TestSuggestionsApi:
    def test_deduped_sorted_and_flagged(self):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN, EQ_FILTER.format(k=1))))
        suggestions = system.materialization_suggestions()
        fingerprints_seen = [s.fingerprint for s in suggestions]
        assert len(fingerprints_seen) == len(set(fingerprints_seen))
        ranks = [(s.count, s.size) for s in suggestions]
        assert ranks == sorted(ranks, reverse=True)
        assert not any(s.materialized for s in suggestions)
        system.maintenance.run_pending()
        refreshed = system.materialization_suggestions()
        assert any(s.materialized for s in refreshed)
        # Positional access stays compatible: [1] is still the count.
        assert refreshed[0][1] == refreshed[0].count

    def test_disabled_runtime_flags_nothing_and_does_nothing(self):
        system = make_system(False, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        assert system.optimizer.execution_rewriter is None
        assert not system.maintenance.run_pending().did_work()
        assert not any(s.materialized for s in system.materialization_suggestions())


class TestSteeringNotes:
    def test_view_and_index_notes_attached_to_responses(self):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(
                Probe(queries=(JOIN, EQ_FILTER.format(k=1)), brief=Brief(goal="exact"))
            )
        system.maintenance.run_pending()
        # Writes drop history so the next probe really executes...
        system.db.execute("INSERT INTO sales VALUES (9006, 1, 'tea', 4.0)")
        system.maintenance.run_pending()  # ...and rebuilds the views
        # A fresh literal (k=2): not hot enough to be a view itself, so it
        # is truthfully credited to the auto-built index, while the hot
        # join is credited to its materialized view.
        response = system.submit(
            Probe(queries=(JOIN, EQ_FILTER.format(k=2)), brief=Brief(goal="exact"))
        )
        assert any("materialized view" in hint for hint in response.steering)
        assert any("auto-built hash index" in hint for hint in response.steering)

    def test_no_notes_when_disabled(self):
        system = make_system(False, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,), brief=Brief(goal="exact")))
        response = system.submit(Probe(queries=(JOIN,), brief=Brief(goal="exact")))
        assert not any("sleeper agent" in hint for hint in response.steering)


class TestIdleScheduling:
    def test_gateway_idle_window_triggers_background_maintenance(self):
        system = make_system(True, workers=1)
        try:
            session = system.session(agent_id="streamer")
            for _ in range(3):
                session.submit(Probe(queries=(JOIN,))).result(timeout=30.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not system.maintenance.views_built:
                time.sleep(0.02)
            assert system.maintenance.views_built > 0
            assert system.maintenance.idle_notifications > 0
        finally:
            system.close()

    def test_preemption_yields_to_pending_probes(self, monkeypatch):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        monkeypatch.setattr(system.gateway, "serving_demand", lambda: 1)
        report = system.maintenance.run_pending(preemptible=True)
        assert report.preempted
        assert not report.did_work()
        # One preemption event counts exactly once in the observability.
        assert system.maintenance.preemptions == 1
        # The synchronous form still runs to completion.
        monkeypatch.setattr(system.gateway, "serving_demand", lambda: 0)
        assert system.maintenance.run_pending().did_work()

    def test_serving_demand_sees_direct_windows_not_just_admission_queue(self):
        """Direct submit/submit_many windows never enter the admission
        queue — they block straight on the serve lock. The preemption
        signal must count them, or a background pass would run to
        completion while a probe waits."""
        system = make_system(True, workers=1)
        gateway = system.gateway
        assert gateway.serving_demand() == 0
        observed = []
        with gateway.serve_lock:  # play the maintenance runtime
            waiter = __import__("threading").Thread(
                target=lambda: system.submit(Probe(queries=(EQ_FILTER.format(k=1),)))
            )
            waiter.start()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and gateway.serving_demand() == 0:
                time.sleep(0.005)
            observed.append(gateway.serving_demand())
        waiter.join(timeout=30.0)
        assert observed and observed[0] > 0
        assert gateway.serving_demand() == 0

    def test_stop_sticks_across_later_idle_notifications(self):
        system = make_system(True, workers=1)
        system.maintenance.notify_idle()
        system.maintenance.stop()
        thread = system.maintenance._thread
        assert thread is None or not thread.is_alive()
        system.maintenance.notify_idle()  # must NOT resurrect the loop
        thread = system.maintenance._thread
        assert thread is None or not thread.is_alive()
        # The synchronous surface stays available after stop.
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        assert system.maintenance.run_pending().did_work()

    def test_no_match_rewrites_preserve_plan_identity(self):
        """When no artifact matches, the rewrite must hand back the same
        node objects — rebuilding the tree would strip the fingerprint
        memos and re-tax every execution's cache keying."""
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(EQ_FILTER.format(k=1),)))
        system.maintenance.run_pending()
        assert system.db.catalog.auxiliary_index_keys()
        untouched = system.db.plan_select("SELECT city FROM stores")
        assert system.maintenance.rewrite_for_execution(untouched) is untouched

    def test_budget_exhaustion_does_not_spin_the_idle_loop(self):
        """With every view slot held by a valid hotter view, _has_work must
        go quiet — not retry the excess candidates every idle window."""
        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(
                enable_maintenance=True,
                maintenance=maintenance_config(max_views=1, auto_index=False),
            ),
            workers=1,
        )
        for _ in range(3):
            system.submit(Probe(queries=(JOIN, EQ_FILTER.format(k=1))))
        first = system.maintenance.run_pending()
        assert len(first.views_built) == 1  # the one slot filled
        assert not system.maintenance.run_pending().did_work()
        assert not system.maintenance._has_work()  # idle loop stays asleep

    def test_cannot_displace_candidates_skipped_before_building(self, monkeypatch):
        """A candidate the store would refuse (not strictly hotter than
        the coldest installed view) must be skipped *before* the subplan
        executes — not rebuilt and discarded every idle window."""
        from repro.core.mqo import MaterializationCandidate

        system = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(
                enable_maintenance=True,
                maintenance=maintenance_config(max_views=1, auto_index=False),
            ),
            workers=1,
        )
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        assert len(system.maintenance.run_pending().views_built) == 1
        installed = system.maintenance.views.snapshot()[0]
        fake = MaterializationCandidate(
            fingerprint="f" * 40,
            strict_fingerprint="s" * 40,
            count=installed.occurrences,  # equal, never strictly hotter
            size=999,  # ranks first, so the generator must skip it itself
            description="fake",
            plan=system.db.plan_select(EQ_FILTER.format(k=1)),
        )
        real_candidates = system.optimizer.advisor.candidates
        monkeypatch.setattr(
            system.optimizer.advisor,
            "candidates",
            lambda *a, **k: [fake] + real_candidates(*a, **k),
        )
        builds = []
        original = system.maintenance._execute_subplan
        monkeypatch.setattr(
            system.maintenance,
            "_execute_subplan",
            lambda plan: builds.append(plan) or original(plan),
        )
        assert not system.maintenance.run_pending().did_work()
        assert not builds  # skipped pre-build
        assert not system.maintenance._has_work()

    def test_doomed_candidates_are_deferred_not_retried(self, monkeypatch):
        """A candidate whose build can never install (or never build at
        all) is deferred until demand grows past the failed attempt —
        otherwise every idle window would re-execute the doomed subplan."""
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        monkeypatch.setattr(system.maintenance.views, "install", lambda view: False)
        report = system.maintenance.run_pending()
        assert not report.views_built
        assert system.maintenance._deferred_views  # recorded at this demand
        assert not system.maintenance.run_pending().did_work()
        assert not system.maintenance._has_work()

    def test_view_swallowed_predicate_not_credited_to_index(self):
        """Notes must mirror execution: a Filter served from inside a
        materialized view never gets an 'auto-built index' hint."""
        hot = RANGE_ROWS.format(t=2.0)
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(hot,), brief=Brief(goal="exact")))
        system.maintenance.run_pending()
        plan = system.db.plan_select(hot)
        rewritten = system.maintenance.rewrite_for_execution(plan)
        assert isinstance(rewritten, logical.ViewScan)  # view wins the root
        notes = system.maintenance.serving_notes(plan)
        assert any("materialized view" in note for note in notes)
        assert not any("auto-built" in note for note in notes)

    def test_env_override_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_MAINTENANCE", raising=False)
        assert resolve_maintenance_enabled(None) is False
        assert resolve_maintenance_enabled(True) is True
        monkeypatch.setenv("REPRO_MAINTENANCE", "1")
        assert resolve_maintenance_enabled(None) is True
        assert resolve_maintenance_enabled(False) is False
        system = AgentFirstDataSystem(build_db(rows=10))
        assert system.maintenance.enabled
        assert system.optimizer.execution_rewriter is not None


class TestRuntimeRobustness:
    def test_rewriter_failure_falls_back_to_original_plan(self, monkeypatch):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        system.maintenance.run_pending()
        plan = system.db.plan_select(JOIN)

        def boom(node, catalog):
            raise RuntimeError("sick view store")

        monkeypatch.setattr(system.maintenance.views, "resolve", boom)
        assert system.maintenance.rewrite_for_execution(plan) is plan
        # Serving still answers correctly through the fallback.
        response = system.submit(Probe(queries=(JOIN,)))
        assert response.outcomes[0].status in ("ok", "from_history")

    def test_racing_write_discards_torn_view_build(self):
        system = make_system(True, workers=1)
        for _ in range(3):
            system.submit(Probe(queries=(JOIN,)))
        runtime: MaintenanceRuntime = system.maintenance
        original = runtime._execute_subplan

        def racing(plan):
            rows = original(plan)
            system.db.catalog.table("sales").insert((9007, 1, "tea", 5.0))
            return rows

        runtime._execute_subplan = racing  # type: ignore[method-assign]
        report = runtime.run_pending()
        assert not report.views_built  # every build raced a write: discarded


class TestIdleHookHardening:
    def test_poison_idle_job_never_kills_admission(self, caplog):
        """A maintenance job that raises inside the gateway's idle window
        must not take the admission loop down with it: the gateway logs,
        counts, and keeps serving every subsequent probe."""
        system = make_system(True, workers=1)
        try:
            calls = {"n": 0}

            def poison() -> None:
                calls["n"] += 1
                raise RuntimeError("poison maintenance job")

            system.gateway.idle_hook = poison
            session = system.session(agent_id="streamer")
            with caplog.at_level("ERROR", logger="repro.core.gateway"):
                for _ in range(3):
                    response = session.submit(
                        Probe(queries=(JOIN,))
                    ).result(timeout=30.0)
                    assert response.outcomes[0].status in ("ok", "from_history")
            assert calls["n"] >= 1  # the hook did fire — and failed
            stats = system.gateway.stats()
            assert stats["idle_hook_errors"] >= 1
            assert "RuntimeError: poison maintenance job" == stats[
                "last_idle_hook_error"
            ]
            assert any(
                "idle hook failed" in record.message for record in caplog.records
            )
        finally:
            system.close()
