"""Tests for the agentic memory store: lookups, staleness, access control."""

from __future__ import annotations

import pytest

from repro.db import Database
from repro.errors import AccessDenied, MemoryStoreError
from repro.memstore import AgenticMemoryStore, Artifact, ArtifactKind, StalenessPolicy


def note(table="sales", column=None, text="states use two-letter codes", **kwargs):
    subject = (table, column) if column else (table,)
    return Artifact(
        kind=kwargs.pop("kind", ArtifactKind.COLUMN_ENCODING),
        subject=subject,
        text=text,
        depends_on=(table,),
        **kwargs,
    )


class TestBasicStore:
    def test_put_and_get(self):
        store = AgenticMemoryStore()
        artifact_id = store.put(note())
        assert store.get(artifact_id).text == "states use two-letter codes"

    def test_get_missing_raises(self):
        with pytest.raises(MemoryStoreError):
            AgenticMemoryStore().get(12345)

    def test_structured_lookup(self):
        store = AgenticMemoryStore()
        store.put(note(column="state"))
        found = store.lookup(ArtifactKind.COLUMN_ENCODING, ("sales", "state"))
        assert len(found) == 1

    def test_lookup_case_insensitive(self):
        store = AgenticMemoryStore()
        store.put(note(column="state"))
        assert store.lookup(ArtifactKind.COLUMN_ENCODING, ("SALES", "STATE"))

    def test_put_supersedes_same_subject(self):
        store = AgenticMemoryStore()
        store.put(note(text="old fact"))
        store.put(note(text="new fact"))
        found = store.lookup(ArtifactKind.COLUMN_ENCODING, ("sales",))
        assert [a.text for a in found] == ["new fact"]

    def test_remember_convenience(self):
        store = AgenticMemoryStore()
        store.remember(
            ArtifactKind.VALUE_RANGE,
            ("sales", "year"),
            "years span 2020-2024",
            low=2020,
            high=2024,
        )
        (artifact,) = store.lookup(ArtifactKind.VALUE_RANGE, ("sales", "year"))
        assert artifact.content == {"low": 2020, "high": 2024}

    def test_semantic_search_finds_related(self):
        store = AgenticMemoryStore()
        store.put(note(text="state column uses two-letter abbreviations like CA"))
        store.put(
            note(
                table="flights",
                kind=ArtifactKind.SCHEMA_NOTE,
                text="flight crew assignments live here",
            )
        )
        results = store.search("how are US states encoded")
        assert results
        assert "two-letter" in results[0][0].text

    def test_artifacts_about_table(self):
        store = AgenticMemoryStore()
        store.put(note())
        store.put(note(column="state", kind=ArtifactKind.MISSING_VALUES))
        store.put(note(table="other"))
        assert len(store.artifacts_about("sales")) == 2

    def test_hit_counter(self):
        store = AgenticMemoryStore()
        artifact_id = store.put(note())
        store.get(artifact_id)
        store.get(artifact_id)
        assert store.get(artifact_id).hits == 3


class TestStaleness:
    def make_db(self) -> Database:
        db = Database()
        db.execute("CREATE TABLE sales (id INT, state TEXT)")
        db.execute("INSERT INTO sales VALUES (1, 'CA')")
        return db

    def test_lazy_marks_stale_on_dml(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.LAZY)
        store.attach(db)
        artifact_id = store.put(note())
        db.execute("INSERT INTO sales VALUES (2, 'WA')")
        assert store.get(artifact_id).stale
        assert store.stale_count() == 1

    def test_eager_drops_on_dml(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.EAGER)
        store.attach(db)
        store.put(note())
        db.execute("INSERT INTO sales VALUES (2, 'WA')")
        assert len(store) == 0
        assert store.invalidations == 1

    def test_data_insensitive_artifact_survives_dml(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.EAGER)
        store.attach(db)
        artifact_id = store.put(note(data_sensitive=False))
        db.execute("INSERT INTO sales VALUES (2, 'WA')")
        assert not store.get(artifact_id).stale

    def test_schema_change_invalidates_even_data_insensitive(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.LAZY)
        store.attach(db)
        artifact_id = store.put(note(data_sensitive=False))
        db.execute("DROP TABLE sales")
        assert store.get(artifact_id).stale

    def test_unrelated_table_change_ignored(self):
        db = self.make_db()
        db.execute("CREATE TABLE other (x INT)")
        store = AgenticMemoryStore(policy=StalenessPolicy.LAZY)
        store.attach(db)
        artifact_id = store.put(note())
        db.execute("INSERT INTO other VALUES (1)")
        assert not store.get(artifact_id).stale

    def test_lookup_can_exclude_stale(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.LAZY)
        store.attach(db)
        store.put(note())
        db.execute("INSERT INTO sales VALUES (2, 'WA')")
        assert store.lookup(ArtifactKind.COLUMN_ENCODING, ("sales",)) != []
        assert (
            store.lookup(
                ArtifactKind.COLUMN_ENCODING, ("sales",), include_stale=False
            )
            == []
        )

    def test_refresh_clears_staleness(self):
        db = self.make_db()
        store = AgenticMemoryStore(policy=StalenessPolicy.LAZY)
        store.attach(db)
        artifact_id = store.put(note())
        db.execute("INSERT INTO sales VALUES (2, 'WA')")
        store.refresh(artifact_id, new_text="verified: still two-letter codes")
        artifact = store.get(artifact_id)
        assert not artifact.stale
        assert "verified" in artifact.text


class TestAccessControl:
    def test_private_artifact_hidden_from_others(self):
        store = AgenticMemoryStore()
        artifact_id = store.put(note(principal="alice"))
        with pytest.raises(AccessDenied):
            store.get(artifact_id, principal="bob")

    def test_shared_artifact_visible_when_sharing_on(self):
        store = AgenticMemoryStore(share_across_principals=True)
        artifact_id = store.put(note(principal="alice", shared=True))
        assert store.get(artifact_id, principal="bob")

    def test_shared_artifact_hidden_when_sharing_off(self):
        store = AgenticMemoryStore(share_across_principals=False)
        artifact_id = store.put(note(principal="alice", shared=True))
        with pytest.raises(AccessDenied):
            store.get(artifact_id, principal="bob")

    def test_search_respects_namespaces(self):
        store = AgenticMemoryStore()
        store.put(note(principal="alice", text="alice private secret about sales"))
        results = store.search("secret about sales", principal="bob")
        assert results == []

    def test_same_principal_always_sees_own(self):
        store = AgenticMemoryStore(share_across_principals=False)
        artifact_id = store.put(note(principal="alice"))
        assert store.get(artifact_id, principal="alice")

    def test_namespaced_put_does_not_supersede_other_principal(self):
        store = AgenticMemoryStore()
        store.put(note(principal="alice", text="alice fact"))
        store.put(note(principal="bob", text="bob fact"))
        found = store.lookup(
            ArtifactKind.COLUMN_ENCODING, ("sales",), principal="alice"
        )
        assert [a.text for a in found] == ["alice fact"]
