"""Overload control & agent QoS: lanes, buckets, shedding, breakers, chaos.

The layer's contract has two halves, both tested here:

* **Inert when unloaded** — a QoS-on system that never crosses a
  watermark serves byte-identically to a QoS-off system (the
  differential class at the bottom), which is what lets CI re-run the
  whole tier-1 suite under ``REPRO_QOS=1``.
* **Degrade, don't drop** — past the watermarks, bulk-lane probes get
  sampled answers or bounded-staleness replica reads (never rejections),
  every degraded response carries a cause-naming steering line, and
  higher lanes are served first. Backend failures trip per-member
  circuit breakers that exclude the member from scatter plans with the
  exclusion reported in steering.
"""

from __future__ import annotations

import pytest

from repro.backends.base import Backend, BackendResponse
from repro.backends.federation import FederatedEnvironment
from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.core.brief import Phase
from repro.errors import BackendUnavailable, OverloadError, ReproError
from repro.qos import (
    LANE_BULK,
    LANE_INTERACTIVE,
    LANE_STANDARD,
    AdmissionPolicy,
    BackendHealth,
    ChaosBackend,
    ChaosEngine,
    CircuitBreaker,
    QosConfig,
    QosController,
    SheddingPolicy,
    SlowConsumer,
    TokenBucket,
    lane_of,
    resolve_chaos_seed,
    resolve_qos_enabled,
)
from repro.qos.breaker import STATE_CLOSED, STATE_HALF_OPEN, STATE_OPEN
from test_scheduler import assert_same_outcomes, build_db, overlapping_probes

COUNT_SALES = "SELECT COUNT(*) FROM sales"
COUNT_STORES = "SELECT COUNT(*) FROM stores"


def qos_system(queue_high=4, max_batch=64, max_wait=30.0, **qos_kwargs):
    """A QoS-on system whose watermark a test can cross on purpose."""
    return AgentFirstDataSystem(
        build_db(),
        config=SystemConfig(
            enable_qos=True,
            qos=QosConfig(queue_high=queue_high, **qos_kwargs),
            gateway_max_batch=max_batch,
            gateway_max_wait=max_wait,
        ),
        workers=1,
    )


class TestLanes:
    def test_validation_probes_are_interactive(self):
        assert lane_of(Brief(phase=Phase.VALIDATION)) == LANE_INTERACTIVE
        assert lane_of(Brief(goal="verify the join result")) == LANE_INTERACTIVE

    def test_metadata_exploration_and_relaxed_accuracy_are_bulk(self):
        assert lane_of(Brief(phase=Phase.METADATA_EXPLORATION)) == LANE_BULK
        assert lane_of(Brief(goal="explore the schema")) == LANE_BULK
        assert lane_of(Brief(accuracy=0.3)) == LANE_BULK

    def test_default_is_standard(self):
        assert lane_of(Brief()) == LANE_STANDARD
        assert lane_of(Brief(goal="compute the final answer")) == LANE_STANDARD

    def test_priority_weight_promotes_one_lane(self):
        assert lane_of(Brief(accuracy=0.3, priorities={0: 2.0})) == LANE_STANDARD
        assert lane_of(Brief(priorities={0: 2.0})) == LANE_INTERACTIVE
        # Already interactive: promotion saturates, never goes negative.
        assert (
            lane_of(Brief(phase=Phase.VALIDATION, priorities={0: 3.0}))
            == LANE_INTERACTIVE
        )

    def test_explicit_lane_beats_derivation(self):
        assert lane_of(Brief(phase=Phase.VALIDATION, lane="bulk")) == LANE_BULK
        assert lane_of(Brief(accuracy=0.1, lane="interactive")) == LANE_INTERACTIVE
        # Unknown lane names fall back to derivation instead of crashing.
        assert lane_of(Brief(lane="warp-speed")) == LANE_STANDARD

    def test_resolve_qos_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_QOS", raising=False)
        assert resolve_qos_enabled(None) is False
        assert resolve_qos_enabled(True) is True
        monkeypatch.setenv("REPRO_QOS", "1")
        assert resolve_qos_enabled(None) is True
        assert resolve_qos_enabled(False) is False  # explicit config wins


class TestTokenBuckets:
    def test_take_and_refill(self):
        bucket = TokenBucket(capacity=2, refill=1)
        assert bucket.take() and bucket.take()
        assert not bucket.take()  # dry: no spend happens
        bucket.refill()
        assert bucket.take()
        for _ in range(5):
            bucket.refill()
        assert bucket.tokens == 2.0  # refill saturates at capacity

    def test_controller_starves_flooding_principal_only(self):
        controller = QosController(QosConfig(bucket_capacity=2, bucket_refill=1))
        flood = [
            controller.classify(Probe.sql("SELECT 1"), queue_depth=0)
            for _ in range(4)
        ]
        assert [starved for _, starved in flood] == [False, False, True, True]
        # A different principal has its own untouched bucket.
        other = Probe(queries=("SELECT 1",), principal="tenant-b")
        assert controller.classify(other, queue_depth=0) == (LANE_STANDARD, False)
        controller.window_served()  # window cadence refills one token
        assert controller.classify(Probe.sql("SELECT 1"), 0)[1] is False
        assert controller.stats()["starved_submissions"] == 2


class TestWatermarks:
    def test_below_watermarks_is_identity(self):
        policy = AdmissionPolicy(QosConfig(queue_high=8))
        assert policy.overload_cause(queue_depth=8) is None
        assert policy.rejection(queue_depth=10_000) is None  # no hard cap

    def test_tripped_watermarks_name_their_cause(self):
        policy = AdmissionPolicy(QosConfig(queue_high=8, wait_high_ms=50.0))
        cause = policy.overload_cause(queue_depth=9)
        assert cause == "admission queue depth 9 > watermark 8"
        cause = policy.overload_cause(queue_depth=1, window_wait_ms=80.0)
        assert "window formation wait 80ms > watermark 50ms" == cause

    def test_hard_cap_raises_structured_overload_error(self):
        controller = QosController(QosConfig(queue_reject=3))
        with pytest.raises(OverloadError) as exc_info:
            controller.classify(Probe.sql("SELECT 1"), queue_depth=3)
        assert isinstance(exc_info.value, ReproError)
        assert exc_info.value.queue_depth == 3 and exc_info.value.limit == 3
        assert "back off and resubmit" in str(exc_info.value)
        assert controller.stats()["probes_rejected"] == 1


class TestShedding:
    def shed(self, probe, lane, replica_ok=False, **config_kwargs):
        policy = SheddingPolicy(QosConfig(**config_kwargs))
        return policy.degradation_for(probe, lane, "queue depth 9 > 8", replica_ok)

    def test_protected_lanes_never_degrade(self):
        probe = Probe.sql(COUNT_SALES)
        assert self.shed(probe, LANE_INTERACTIVE) is None
        assert self.shed(probe, LANE_STANDARD) is None

    def test_bulk_lane_gets_sample_verdict_with_steering(self):
        verdict = self.shed(Probe.sql(COUNT_SALES), LANE_BULK, shed_sample_rate=0.2)
        assert verdict.kind == "sample" and verdict.sample_cap == 0.2
        hint = verdict.steering()
        assert "system under load (queue depth 9 > 8)" in hint
        assert "sampled at 20%" in hint
        assert "Brief(lane='interactive')" in hint  # the recovery action

    def test_replica_verdict_preferred_and_keeps_declared_tolerance(self):
        declared = Probe(queries=(COUNT_SALES,), brief=Brief(max_staleness=3))
        verdict = self.shed(declared, LANE_BULK, replica_ok=True)
        assert verdict.kind == "replica" and verdict.staleness == 3
        undeclared = Probe.sql(COUNT_SALES)
        verdict = self.shed(undeclared, LANE_BULK, replica_ok=True)
        assert verdict.staleness == QosConfig().shed_max_staleness
        assert "read replica" in verdict.steering()
        assert "system under load" in verdict.steering()

    def test_nothing_executable_means_no_verdict(self):
        memory_only = Probe(memory_queries=("what did we learn",))
        assert self.shed(memory_only, LANE_BULK) is None


class TestBreakerLifecycle:
    def make(self, **kwargs):
        clock = [0.0]
        defaults = dict(
            breaker_window=8,
            breaker_min_calls=4,
            breaker_failure_rate=0.5,
            breaker_cooldown_s=10.0,
        )
        defaults.update(kwargs)
        breaker = CircuitBreaker(
            "pg", QosConfig(**defaults), clock=lambda: clock[0]
        )
        return breaker, clock

    def test_failure_rate_trips_after_min_calls(self):
        breaker, _ = self.make()
        breaker.record(ok=False)  # one early error alone must not trip
        assert breaker.state == STATE_CLOSED
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == STATE_CLOSED  # min_calls not reached
        breaker.record(ok=False)  # 3/4 failures >= 0.5
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 1

    def test_latency_trips_a_correct_but_slow_backend(self):
        breaker, _ = self.make(breaker_latency_ms=100.0)
        for _ in range(4):
            breaker.record(ok=True, latency_ms=500.0)
        assert breaker.state == STATE_OPEN

    def test_open_refuses_until_cooldown_then_probes(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record(ok=False)
        assert not breaker.allow()
        assert breaker.cooldown_remaining() == pytest.approx(10.0)
        clock[0] = 4.0
        assert breaker.cooldown_remaining() == pytest.approx(6.0)
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.allow()  # the half-open recovery probe
        assert breaker.state == STATE_HALF_OPEN
        assert not breaker.allow()  # probe budget (1) already in flight
        breaker.record(ok=True)
        assert breaker.state == STATE_CLOSED
        assert breaker.allow()

    def test_half_open_failure_reopens_with_fresh_cooldown(self):
        breaker, clock = self.make()
        for _ in range(4):
            breaker.record(ok=False)
        clock[0] = 10.0
        assert breaker.allow()
        breaker.record(ok=False)  # recovery probe failed
        assert breaker.state == STATE_OPEN
        assert breaker.trips == 2
        assert breaker.cooldown_remaining() == pytest.approx(10.0)

    def test_health_registry_reports_exclusions(self):
        clock = [0.0]
        health = BackendHealth(
            QosConfig(breaker_min_calls=2, breaker_cooldown_s=5.0),
            clock=lambda: clock[0],
        )
        health.record("flaky", ok=False)
        health.record("flaky", ok=False)
        health.record("solid", ok=True)
        assert health.excluded() == [("flaky", 5.0)]
        assert health.allow("solid") and not health.allow("flaky")
        assert health.stats()["flaky"]["state"] == STATE_OPEN


def _rows(value):
    return BackendResponse(ok=True, rows=[(value,)], columns=["x"])


class _ScriptedBackend(Backend):
    """A member that answers from a mutable script (for breaker tests)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.kind = "sql"
        self.fail = False
        self.calls = 0

    def _serve(self) -> BackendResponse:
        self.calls += 1
        if self.fail:
            return BackendResponse.failure(f"{self.name} fell over")
        return _rows(self.calls)

    def list_tables(self) -> BackendResponse:
        return self._serve()

    def describe(self, table: str) -> BackendResponse:
        return self._serve()

    def sample(self, table: str, limit: int = 5) -> BackendResponse:
        return self._serve()

    def query(self, request: str) -> BackendResponse:
        return self._serve()


class TestFederationBreakers:
    def make_env(self, **config_kwargs):
        clock = [0.0]
        defaults = dict(
            breaker_min_calls=2, breaker_failure_rate=0.5, breaker_cooldown_s=10.0
        )
        defaults.update(config_kwargs)
        health = BackendHealth(QosConfig(**defaults), clock=lambda: clock[0])
        env = FederatedEnvironment()
        env.add_backend(_ScriptedBackend("flaky"))
        env.add_backend(_ScriptedBackend("solid"))
        env.attach_health(health)
        return env, health, clock

    def test_open_breaker_short_circuits_without_calling_backend(self):
        env, health, _ = self.make_env()
        env.backend("flaky").fail = True
        for _ in range(2):
            assert not env.query("flaky", "SELECT 1").ok
        assert health.breaker("flaky").state == STATE_OPEN
        calls_before = env.backend("flaky").calls
        refused = env.query("flaky", "SELECT 1")
        assert env.backend("flaky").calls == calls_before  # never dispatched
        assert not refused.ok
        assert "circuit breaker open" in refused.error
        assert "backend 'flaky' unavailable" in refused.error
        # The refusal is an envelope in the interaction log, not a hole.
        assert env.log[-1].error == refused.error

    def test_scatter_excludes_open_members_and_reports_in_steering(self):
        env, health, clock = self.make_env()
        env.backend("flaky").fail = True
        env.query("flaky", "SELECT 1")
        env.query("flaky", "SELECT 1")
        result = env.scatter("query", "SELECT 1")
        assert sorted(result.responses) == ["solid"]
        assert result.excluded == [("flaky", pytest.approx(10.0))]
        (hint,) = result.steering
        assert "backend 'flaky' excluded from the plan" in hint
        assert "circuit breaker open" in hint
        # Past the cooldown the scatter probe itself heals the member.
        clock[0] = 10.0
        env.backend("flaky").fail = False
        recovered = env.scatter("query", "SELECT 1")
        assert sorted(recovered.responses) == ["flaky", "solid"]
        assert recovered.steering == []
        assert health.breaker("flaky").state == STATE_CLOSED

    def test_chaos_backend_trips_breaker_deterministically(self):
        env, health, clock = self.make_env(breaker_min_calls=4)
        engine = ChaosEngine(seed=7)
        env.backends["flaky"] = ChaosBackend(
            env.backend("flaky"), engine, fault_rate=1.0
        )
        for _ in range(4):
            response = env.query("flaky", "SELECT 1")
            assert "chaos: injected query failure" in response.error
        assert health.breaker("flaky").state == STATE_OPEN
        assert engine.faults_injected == 4
        # Recovery: chaos off (rate honoured), cooldown passes, one good
        # probe closes the breaker again.
        env.backends["flaky"] = env.backends["flaky"].inner
        clock[0] = 10.0
        assert env.query("flaky", "SELECT 1").ok
        assert health.breaker("flaky").state == STATE_CLOSED


class TestChaosDeterminism:
    def test_same_seed_same_fault_sequence(self):
        draws_a = [
            (ChaosEngine(42).backend_fault("pg", "query", 0.5) is not None)
            for _ in range(1)
        ]
        first = ChaosEngine(42)
        second = ChaosEngine(42)
        sequence = lambda engine: [
            (
                engine.backend_fault("pg", "query", 0.3) is not None,
                engine.admission_delay_s(),
            )
            for _ in range(32)
        ]
        assert sequence(first) == sequence(second)
        assert first.faults_injected == second.faults_injected

    def test_resolve_chaos_seed(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert resolve_chaos_seed() is None
        assert resolve_chaos_seed(9) == 9
        monkeypatch.setenv("REPRO_CHAOS", "0")
        assert resolve_chaos_seed() is None
        monkeypatch.setenv("REPRO_CHAOS", "1234")
        assert resolve_chaos_seed() == 1234
        monkeypatch.setenv("REPRO_CHAOS", "tuesday")
        text_seed = resolve_chaos_seed()
        assert isinstance(text_seed, int)
        assert text_seed == resolve_chaos_seed()  # stable across calls

    def test_injected_faults_name_their_seed(self):
        engine = ChaosEngine(seed=13)
        message = None
        while message is None:
            message = engine.backend_fault("duck", "sample", 0.5)
        assert "(seed 13)" in message and "backend 'duck'" in message


class TestOverloadedGateway:
    """End-to-end: flood a tiny watermark and watch the layer act."""

    def flood(self, system, probes):
        tickets = [system.gateway.submit(p) for p in probes]
        system.gateway.flush()
        responses = [t.result(timeout=60.0) for t in tickets]
        system.gateway.close()
        return tickets, responses

    def test_bulk_lane_degrades_with_legible_steering(self):
        system = qos_system(queue_high=4, shed_sample_rate=0.1)
        probes = [
            Probe(
                queries=("SELECT product FROM sales WHERE amount > 1.0",),
                brief=Brief(lane="bulk"),
                agent_id=f"bulk-{i}",
            )
            for i in range(8)
        ]
        tickets, responses = self.flood(system, probes)
        stats = system.gateway.stats()
        assert stats["overload_windows"] >= 1
        assert stats["probes_degraded"] == len(probes)
        for response in responses:
            assert response.outcomes[0].status == "approximate"
            assert "load shed" in response.outcomes[0].reason
            (hint,) = [s for s in response.steering if "system under load" in s]
            assert "sampled at 10%" in hint

    def test_interactive_lane_served_first_and_undegraded(self):
        system = qos_system(queue_high=4)
        bulk = [
            Probe(
                queries=(COUNT_SALES,),
                brief=Brief(lane="bulk"),
                agent_id=f"bulk-{i}",
                principal=f"bulk-{i}",
            )
            for i in range(6)
        ]
        urgent = [
            Probe(
                queries=(COUNT_STORES,),
                brief=Brief(lane="interactive"),
                agent_id=f"urgent-{i}",
                principal=f"urgent-{i}",
            )
            for i in range(2)
        ]
        # Bulk probes arrive first; the urgent ones still get served first.
        tickets, _ = self.flood(system, bulk + urgent)
        bulk_turns = [t.result().turn for t in tickets[: len(bulk)]]
        urgent_turns = [t.result().turn for t in tickets[len(bulk) :]]
        assert max(urgent_turns) < min(bulk_turns)
        assert urgent_turns == sorted(urgent_turns)  # FIFO within the lane
        for ticket in tickets[len(bulk) :]:
            response = ticket.result()
            assert response.outcomes[0].status in ("ok", "from_history")
            assert not any("system under load" in s for s in response.steering)

    def test_starved_principal_sorts_behind_other_lanes(self):
        system = qos_system(queue_high=64, bucket_capacity=2, bucket_refill=1)
        # The flooder burns its bucket dry; its surplus yields to a later
        # bulk-lane arrival from a different principal. queue_high=64 keeps
        # the queue-depth watermark out of the way; the starved offset is
        # ordering state, but ordering only activates under overload — so
        # force it with the wait watermark at 0ms.
        system.qos.config.wait_high_ms = 0.0
        flooder = [
            Probe(queries=(COUNT_SALES,), principal="flood", agent_id=f"f{i}")
            for i in range(4)
        ]
        polite = Probe(
            queries=(COUNT_STORES,),
            brief=Brief(lane="bulk"),
            principal="polite",
            agent_id="polite",
        )
        tickets, _ = self.flood(system, flooder + [polite])
        flood_turns = [t.result().turn for t in tickets[:4]]
        polite_turn = tickets[4].result().turn
        # First two flood probes were in budget (standard lane, before
        # bulk); the starved surplus lands behind the polite bulk probe.
        assert sorted(flood_turns[:2]) == flood_turns[:2]
        assert polite_turn < max(flood_turns[2:])
        assert system.gateway.stats()["qos"]["starved_submissions"] == 2

    def test_hard_cap_rejects_submission_with_overload_error(self):
        system = qos_system(queue_high=2, queue_reject=3)
        accepted = [system.gateway.submit(Probe.sql(COUNT_SALES)) for _ in range(3)]
        with pytest.raises(OverloadError, match="hard cap 3"):
            system.gateway.submit(Probe.sql(COUNT_SALES))
        system.gateway.flush()
        for ticket in accepted:  # everyone admitted still gets an answer
            assert ticket.result(timeout=60.0).outcomes[0].status in (
                "ok",
                "from_history",
                "approximate",
            )
        system.gateway.close()

    def test_slow_consumer_never_wedges_admission(self):
        system = qos_system(queue_high=4, max_wait=0.005)
        engine = ChaosEngine(seed=11)
        tickets = [
            system.gateway.submit(Probe.sql(COUNT_STORES)) for _ in range(12)
        ]
        consumer = SlowConsumer(engine, stall_rate=0.5, max_stall_s=0.003)
        responses = consumer.drain(tickets, timeout=60.0)
        assert len(responses) == 12
        assert all(r.outcomes[0].status in ("ok", "from_history") for r in responses)
        assert system.gateway.stats()["windows_streamed"] >= 1
        system.gateway.close()


class TestReplicaShedding:
    def test_overload_sheds_bulk_reads_to_replicas_with_load_note(self, tmp_path):
        from test_maintenance import build_db as build_wal_db

        db = build_wal_db(wal_dir=str(tmp_path / "wal"))
        system = AgentFirstDataSystem(
            db,
            config=SystemConfig(
                enable_qos=True,
                qos=QosConfig(queue_high=2, shed_max_staleness=8),
                read_replicas=1,
                gateway_max_batch=64,
                gateway_max_wait=30.0,
            ),
            workers=1,
        )
        try:
            # No declared max_staleness: only the QoS override makes these
            # replica-eligible, and only because overload imposes a bound.
            probes = [
                Probe(
                    queries=(COUNT_SALES,),
                    brief=Brief(lane="bulk"),
                    agent_id=f"b{i}",
                )
                for i in range(6)
            ]
            tickets = [system.gateway.submit(p) for p in probes]
            system.gateway.flush()
            responses = [t.result(timeout=60.0) for t in tickets]
            stats = system.gateway.stats()
            assert stats["probes_shed_to_replicas"] == len(probes)
            fresh_rows = system.db.execute(COUNT_SALES).rows
            for response in responses:
                assert response.outcomes[0].status == "ok"
                assert response.outcomes[0].result.rows == fresh_rows
                assert any("served by read replica" in s for s in response.steering)
                (note,) = [s for s in response.steering if "system under load" in s]
                assert "staleness <= 8 versions" in note
        finally:
            system.close()


class TestQosDifferential:
    """The invariant the whole layer hangs on: under no overload, QoS-on
    is byte-identical to QoS-off (CI re-runs tier-1 under ``REPRO_QOS=1``
    on the same grounds)."""

    @pytest.mark.parametrize("workers", [1, 3])
    def test_unloaded_qos_system_matches_plain_system(self, workers):
        from test_gateway import mixed_stream, stream_and_gather

        plain = AgentFirstDataSystem(build_db(), workers=workers)
        plain_responses = stream_and_gather(plain, mixed_stream())

        qos_on = AgentFirstDataSystem(
            build_db(),
            config=SystemConfig(enable_qos=True),
            workers=workers,
        )
        qos_responses = stream_and_gather(qos_on, mixed_stream())
        assert_same_outcomes(plain_responses, qos_responses)
        for plain_r, qos_r in zip(plain_responses, qos_responses):
            assert plain_r.steering == qos_r.steering  # no phantom hints
        stats = qos_on.gateway.stats()
        assert stats["overload_windows"] == 0
        assert stats["probes_degraded"] == 0

    def test_unloaded_submit_path_identical_too(self):
        plain = AgentFirstDataSystem(build_db(), workers=1)
        qos_on = AgentFirstDataSystem(
            build_db(), config=SystemConfig(enable_qos=True), workers=1
        )
        plain_responses = [plain.submit(p) for p in overlapping_probes(6)]
        qos_responses = [qos_on.submit(p) for p in overlapping_probes(6)]
        assert_same_outcomes(plain_responses, qos_responses)


class TestStructuredErrors:
    def test_backend_unavailable_carries_cooldown(self):
        error = BackendUnavailable("duck", 12.34)
        assert error.backend == "duck"
        assert error.cooldown_remaining == 12.34
        assert "recovery probe in 12.3s" in str(error)
        assert isinstance(error, ReproError)

    def test_overload_error_names_both_numbers(self):
        error = OverloadError(300, 256)
        assert "queue at 300 probes >= hard cap 256" in str(error)
