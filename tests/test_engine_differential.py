"""Differential testing: the engine vs. a naive Python reference.

Hypothesis generates random single-table queries (filters, projections,
aggregates, group-bys, order/limit); both the SQL engine and a pure-Python
reference evaluate them over the same rows; results must agree. This is
the strongest correctness net over the whole parse→plan→optimize→execute
pipeline.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database

COLUMNS = ["id", "grp", "val", "flag"]


def make_db(rows: list[tuple]) -> Database:
    db = Database("diff")
    db.execute("CREATE TABLE t (id INT, grp TEXT, val FLOAT, flag INT)")
    if rows:
        db.insert_rows("t", rows)
    return db


rows_strategy = st.lists(
    st.tuples(
        st.integers(0, 50),
        st.sampled_from(["a", "b", "c", None]),
        st.one_of(st.none(), st.floats(-100, 100, allow_nan=False, width=32)),
        st.integers(0, 3),
    ),
    min_size=0,
    max_size=40,
)

predicate_strategy = st.sampled_from(
    [
        None,
        ("id", ">", 10),
        ("id", "<=", 25),
        ("grp", "=", "a"),
        ("grp", "<>", "b"),
        ("val", ">", 0.0),
        ("flag", "=", 2),
    ]
)


def reference_filter(rows, predicate):
    if predicate is None:
        return list(rows)
    column, op, literal = predicate
    index = COLUMNS.index(column)
    out = []
    for row in rows:
        value = row[index]
        if value is None:
            continue
        if op == ">" and not value > literal:
            continue
        if op == "<=" and not value <= literal:
            continue
        if op == "=" and not value == literal:
            continue
        if op == "<>" and not value != literal:
            continue
        out.append(row)
    return out


def predicate_sql(predicate):
    if predicate is None:
        return ""
    column, op, literal = predicate
    rendered = f"'{literal}'" if isinstance(literal, str) else str(literal)
    return f" WHERE {column} {op} {rendered}"


class TestDifferentialScalar:
    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_count_sum_avg(self, rows, predicate):
        db = make_db(rows)
        survivors = reference_filter(rows, predicate)
        expected_count = len(survivors)
        values = [r[2] for r in survivors if r[2] is not None]
        expected_sum = sum(values) if values else None
        expected_avg = sum(values) / len(values) if values else None

        result = db.execute(
            "SELECT COUNT(*), SUM(val), AVG(val) FROM t" + predicate_sql(predicate)
        )
        count, total, avg = result.rows[0]
        assert count == expected_count
        if expected_sum is None:
            assert total is None
        else:
            assert total == pytest.approx(expected_sum, rel=1e-9, abs=1e-9)
        if expected_avg is None:
            assert avg is None
        else:
            assert avg == pytest.approx(expected_avg, rel=1e-9, abs=1e-9)

    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_min_max(self, rows, predicate):
        db = make_db(rows)
        survivors = reference_filter(rows, predicate)
        values = [r[2] for r in survivors if r[2] is not None]
        result = db.execute("SELECT MIN(val), MAX(val) FROM t" + predicate_sql(predicate))
        low, high = result.rows[0]
        if not values:
            assert low is None and high is None
        else:
            assert low == pytest.approx(min(values))
            assert high == pytest.approx(max(values))

    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_projection_multiset(self, rows, predicate):
        db = make_db(rows)
        survivors = reference_filter(rows, predicate)
        expected = sorted(
            ((r[0], r[1]) for r in survivors),
            key=lambda x: (repr(x[0]), repr(x[1])),
        )
        result = db.execute("SELECT id, grp FROM t" + predicate_sql(predicate))
        actual = sorted(result.rows, key=lambda x: (repr(x[0]), repr(x[1])))
        assert actual == expected


class TestDifferentialGrouped:
    @given(rows=rows_strategy, predicate=predicate_strategy)
    @settings(max_examples=60, deadline=None)
    def test_group_by_count_sum(self, rows, predicate):
        db = make_db(rows)
        survivors = reference_filter(rows, predicate)
        expected: dict = {}
        for row in survivors:
            bucket = expected.setdefault(row[1], [0, 0.0, False])
            bucket[0] += 1
            if row[2] is not None:
                bucket[1] += row[2]
                bucket[2] = True
        result = db.execute(
            "SELECT grp, COUNT(*), SUM(val) FROM t"
            + predicate_sql(predicate)
            + " GROUP BY grp"
        )
        actual = {row[0]: (row[1], row[2]) for row in result.rows}
        assert set(actual) == set(expected)
        for key, (count, total, has_value) in expected.items():
            assert actual[key][0] == count
            if has_value:
                assert actual[key][1] == pytest.approx(total, rel=1e-9, abs=1e-9)
            else:
                assert actual[key][1] is None

    @given(rows=rows_strategy)
    @settings(max_examples=40, deadline=None)
    def test_distinct(self, rows):
        db = make_db(rows)
        expected = {r[1] for r in rows}
        result = db.execute("SELECT DISTINCT grp FROM t")
        assert {row[0] for row in result.rows} == expected

    @given(rows=rows_strategy, limit=st.integers(0, 10))
    @settings(max_examples=40, deadline=None)
    def test_order_limit(self, rows, limit):
        db = make_db(rows)
        result = db.execute(f"SELECT id FROM t ORDER BY id LIMIT {limit}")
        expected = sorted(r[0] for r in rows)[:limit]
        assert result.column_values("id") == expected


class TestDifferentialJoin:
    @given(
        left=st.lists(st.integers(0, 8), min_size=0, max_size=15),
        right=st.lists(st.integers(0, 8), min_size=0, max_size=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_inner_join_multiset(self, left, right):
        db = Database("j")
        db.execute("CREATE TABLE l (k INT)")
        db.execute("CREATE TABLE r (k INT)")
        db.insert_rows("l", [(v,) for v in left])
        db.insert_rows("r", [(v,) for v in right])
        result = db.execute("SELECT l.k FROM l JOIN r ON l.k = r.k")
        expected = sorted(
            lv for lv in left for rv in right if lv == rv
        )
        assert sorted(result.column_values("k")) == expected

    @given(
        left=st.lists(st.integers(0, 5), min_size=0, max_size=10),
        right=st.lists(st.integers(0, 5), min_size=0, max_size=10),
    )
    @settings(max_examples=50, deadline=None)
    def test_left_join_preserves_left_cardinality(self, left, right):
        db = Database("j2")
        db.execute("CREATE TABLE l (k INT)")
        db.execute("CREATE TABLE r (k INT)")
        db.insert_rows("l", [(v,) for v in left])
        db.insert_rows("r", [(v,) for v in right])
        result = db.execute("SELECT l.k, r.k FROM l LEFT JOIN r ON l.k = r.k")
        expected_rows = sum(
            max(right.count(lv), 1) for lv in left
        )
        assert result.row_count == expected_rows
        # NULL-extension only for unmatched keys.
        for lk, rk in result.rows:
            if rk is None:
                assert lk not in right
            else:
                assert lk == rk
