"""Tests for branched transactions: CoW forks, isolation, rollback, merge."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db import Database
from repro.errors import BranchNotFound, MergeConflict, TransactionError
from repro.txn import BranchManager, WriteOp


def make_manager(rows: int = 600) -> BranchManager:
    db = Database("main")
    db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT, balance FLOAT)")
    db.insert_rows(
        "accounts", [(i, f"user{i}", 100.0) for i in range(rows)]
    )
    return BranchManager(db)


class TestForking:
    def test_fork_sees_parent_data(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        assert fork.execute("SELECT COUNT(*) FROM accounts").first_value() == 600

    def test_fork_is_cow_not_copy(self):
        manager = make_manager()
        manager.fork("main", "b1")
        assert manager.shared_chunk_fraction("b1", "main") == 1.0

    def test_write_in_fork_invisible_to_parent(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        assert fork.execute(
            "SELECT balance FROM accounts WHERE id = 1"
        ).first_value() == 0.0
        assert manager.main.execute(
            "SELECT balance FROM accounts WHERE id = 1"
        ).first_value() == 100.0

    def test_write_in_parent_invisible_to_fork(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        manager.main.execute("UPDATE accounts SET balance = 0 WHERE id = 2")
        assert fork.execute(
            "SELECT balance FROM accounts WHERE id = 2"
        ).first_value() == 100.0

    def test_sibling_branches_isolated(self):
        manager = make_manager()
        left = manager.fork("main", "left")
        right = manager.fork("main", "right")
        left.execute("UPDATE accounts SET owner = 'L' WHERE id = 5")
        right.execute("UPDATE accounts SET owner = 'R' WHERE id = 5")
        assert left.execute(
            "SELECT owner FROM accounts WHERE id = 5"
        ).first_value() == "L"
        assert right.execute(
            "SELECT owner FROM accounts WHERE id = 5"
        ).first_value() == "R"

    def test_fork_of_fork(self):
        manager = make_manager()
        child = manager.fork("main", "child")
        child.execute("UPDATE accounts SET balance = 7 WHERE id = 0")
        grandchild = manager.fork("child", "grandchild")
        assert grandchild.execute(
            "SELECT balance FROM accounts WHERE id = 0"
        ).first_value() == 7.0
        assert grandchild.parent == "child"

    def test_only_touched_chunks_diverge(self):
        manager = make_manager(rows=600)  # 3 chunks of 256
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        shared = manager.shared_chunk_fraction("b1", "main")
        assert 0.5 < shared < 1.0  # one chunk rewritten, others shared

    def test_duplicate_fork_name_rejected(self):
        manager = make_manager()
        manager.fork("main", "b1")
        with pytest.raises(TransactionError):
            manager.fork("main", "b1")

    def test_thousand_forks_cheap_and_correct(self):
        manager = make_manager(rows=300)
        for i in range(1000):
            manager.fork("main", f"b{i}")
        assert manager.live_branch_count() == 1001
        assert manager.branch("b999").execute(
            "SELECT COUNT(*) FROM accounts"
        ).first_value() == 300


class TestRollback:
    def test_rollback_discards_branch(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 0 WHERE id = 1")
        manager.rollback("b1")
        with pytest.raises(BranchNotFound):
            manager.branch("b1")
        assert manager.main.execute(
            "SELECT balance FROM accounts WHERE id = 1"
        ).first_value() == 100.0

    def test_rolled_back_branch_unusable(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        manager.rollback("b1")
        with pytest.raises(TransactionError):
            fork.execute("SELECT 1")

    def test_cannot_rollback_main(self):
        with pytest.raises(TransactionError):
            make_manager().rollback("main")

    def test_stats_track_activity(self):
        manager = make_manager()
        manager.fork("main", "a")
        manager.fork("main", "b")
        manager.rollback("a")
        stats = manager.stats()
        assert stats["forks_created"] == 2
        assert stats["rollbacks"] == 1
        assert stats["live_branches"] == 2


class TestMerge:
    def test_clean_merge_applies_updates(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 42 WHERE id = 3")
        result = manager.merge("b1")
        assert result.updates == 1
        assert manager.main.execute(
            "SELECT balance FROM accounts WHERE id = 3"
        ).first_value() == 42.0

    def test_merge_consumes_branch(self):
        manager = make_manager()
        manager.fork("main", "b1")
        manager.merge("b1")
        with pytest.raises(BranchNotFound):
            manager.branch("b1")

    def test_merge_applies_inserts_with_fresh_ids(self):
        manager = make_manager(rows=10)
        fork = manager.fork("main", "b1")
        fork.execute("INSERT INTO accounts VALUES (1000, 'new', 5.0)")
        manager.main.execute("INSERT INTO accounts VALUES (2000, 'other', 6.0)")
        result = manager.merge("b1")
        assert result.inserts == 1
        assert manager.main.execute(
            "SELECT COUNT(*) FROM accounts"
        ).first_value() == 12

    def test_merge_applies_deletes(self):
        manager = make_manager(rows=10)
        fork = manager.fork("main", "b1")
        fork.execute("DELETE FROM accounts WHERE id = 4")
        manager.merge("b1")
        assert manager.main.execute(
            "SELECT COUNT(*) FROM accounts WHERE id = 4"
        ).first_value() == 0

    def test_write_write_conflict_detected(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 1 WHERE id = 7")
        manager.main.execute("UPDATE accounts SET balance = 2 WHERE id = 7")
        with pytest.raises(MergeConflict) as excinfo:
            manager.merge("b1")
        assert ("accounts", excinfo.value.conflicts[0][1]) == excinfo.value.conflicts[0]

    def test_disjoint_writes_merge_cleanly(self):
        manager = make_manager()
        fork = manager.fork("main", "b1")
        fork.execute("UPDATE accounts SET balance = 1 WHERE id = 7")
        manager.main.execute("UPDATE accounts SET balance = 2 WHERE id = 8")
        manager.merge("b1")
        balances = manager.main.execute(
            "SELECT id, balance FROM accounts WHERE id IN (7, 8) ORDER BY id"
        ).rows
        assert balances == [(7, 1.0), (8, 2.0)]

    def test_sibling_conflict_via_explicit_target(self):
        manager = make_manager()
        left = manager.fork("main", "left")
        right = manager.fork("main", "right")
        left.execute("UPDATE accounts SET balance = 1 WHERE id = 9")
        right.execute("UPDATE accounts SET balance = 2 WHERE id = 9")
        manager.merge("left")  # left -> main, clean
        with pytest.raises(MergeConflict):
            manager.merge("right")  # right -> main now conflicts

    def test_branch_insert_then_update_merges(self):
        manager = make_manager(rows=5)
        fork = manager.fork("main", "b1")
        fork.execute("INSERT INTO accounts VALUES (99, 'x', 1.0)")
        fork.execute("UPDATE accounts SET balance = 2.0 WHERE id = 99")
        result = manager.merge("b1")
        assert result.inserts == 1
        value = manager.main.execute(
            "SELECT balance FROM accounts WHERE id = 99"
        ).first_value()
        assert value == 2.0

    def test_insert_only_branches_never_conflict(self):
        manager = make_manager(rows=5)
        a = manager.fork("main", "a")
        b = manager.fork("main", "b")
        a.execute("INSERT INTO accounts VALUES (100, 'a', 1.0)")
        b.execute("INSERT INTO accounts VALUES (101, 'b', 2.0)")
        manager.merge("a")
        manager.merge("b")
        assert manager.main.execute(
            "SELECT COUNT(*) FROM accounts"
        ).first_value() == 7


class TestIsolationProperty:
    """Randomised multi-branch interleavings preserve isolation."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["left", "right"]),
                st.integers(0, 19),
                st.floats(0, 1000, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=20, deadline=None)
    def test_branches_never_observe_each_other(self, ops):
        manager = make_manager(rows=20)
        branches = {
            "left": manager.fork("main", "left"),
            "right": manager.fork("main", "right"),
        }
        expected = {
            "left": {i: 100.0 for i in range(20)},
            "right": {i: 100.0 for i in range(20)},
        }
        for branch_name, account, amount in ops:
            branches[branch_name].execute(
                f"UPDATE accounts SET balance = {amount} WHERE id = {account}"
            )
            expected[branch_name][account] = float(amount)
        for branch_name, branch in branches.items():
            rows = branch.execute("SELECT id, balance FROM accounts").rows
            assert dict(rows) == pytest.approx(expected[branch_name])
        # Main is untouched throughout.
        main_rows = manager.main.execute("SELECT balance FROM accounts").rows
        assert all(balance == 100.0 for (balance,) in main_rows)


class TestWriteIdentity:
    """Write identity is normalized once, at WriteOp construction.

    Regression: ``key`` used to lowercase while merge replay used the raw
    table string — a branch writing ``"Accounts"`` (quoted) and another
    writing ``accounts`` could dodge conflict detection yet replay into
    the same table.
    """

    def test_writeop_normalizes_table_at_construction(self):
        op = WriteOp("update", '"Accounts"', 1, (1, "u", 0.0))
        assert op.table == "accounts"
        assert op.key == ("accounts", 1)
        assert op.key == WriteOp("delete", "ACCOUNTS", 1, None).key

    def test_mixed_case_writes_to_same_row_conflict(self):
        manager = make_manager()
        left = manager.fork("main", "left")
        right = manager.fork("main", "right")
        left.update_row('"Accounts"', 5, (5, "left", 1.0))
        right.update_row("accounts", 5, (5, "right", 2.0))
        manager.merge("left")
        with pytest.raises(MergeConflict):
            manager.merge("right")

    def test_quoted_identifier_merge_replays_into_one_table(self):
        manager = make_manager()
        fork = manager.fork("main", "b")
        fork.update_row('"Accounts"', 5, (5, "quoted", 7.0))
        result = manager.merge("b")
        assert result.updates == 1
        assert manager.main.execute(
            "SELECT owner FROM accounts WHERE id = 5"
        ).first_value() == "quoted"
