"""Memoized fingerprints must be byte-identical to the per-call path.

The one-pass bottom-up memoization in :mod:`repro.plan.fingerprint` is a
pure performance layer: for every subtree of every plan, both digests
(strict and lenient) and the enumeration used by Figure 2's census must
equal what the original per-call computation produces — including for
plans with shadowed binding names, where the memoizer must fall back.
"""

from __future__ import annotations

from repro.db import Database
from repro.plan.fingerprint import (
    FINGERPRINT_STATS,
    _subexpressions_uncached,
    fingerprint,
    fingerprint_uncached,
    fingerprints,
    subexpressions,
)

#: A corpus exercising every operator the canonicaliser handles: scans,
#: filters, projections, hash and nested-loop joins, aggregation, sorting,
#: limits, DISTINCT, subquery scans, IN lists, CASE, and equivalence pairs
#: (alias erasure, commuted operands, permuted projections).
CORPUS = [
    "SELECT city FROM stores",
    "SELECT city, state FROM stores",
    "SELECT state, city FROM stores",
    "SELECT * FROM stores WHERE state = 'California' AND id > 1",
    "SELECT * FROM stores WHERE id > 1 AND 'California' = state",
    "SELECT COUNT(*) FROM sales WHERE store_id = 2",
    "SELECT COUNT(*), SUM(amount) FROM sales WHERE amount > 10.0",
    "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
    " ON s.id = x.store_id GROUP BY s.city",
    "SELECT st.city, SUM(sa.amount) FROM stores st JOIN sales sa"
    " ON st.id = sa.store_id GROUP BY st.city",
    "SELECT DISTINCT product FROM sales",
    "SELECT product, AVG(amount) FROM sales GROUP BY product"
    " ORDER BY product DESC LIMIT 2",
    "SELECT city FROM stores WHERE id IN (1, 2, 3) OR state = 'Texas'",
    "SELECT CASE WHEN amount > 20 THEN 'big' ELSE 'small' END FROM sales",
    "SELECT t.id FROM (SELECT id, amount FROM sales WHERE amount > 1.0) t"
    " WHERE t.amount < 50.0",
    "SELECT s.city, x.product FROM stores s JOIN sales x ON s.id < x.id",
]


def build_db() -> Database:
    db = Database("fp-memo")
    db.execute("CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)")
    db.execute(
        "CREATE TABLE sales (id INT, store_id INT, product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.insert_rows(
        "sales",
        [(i, 1 + i % 3, "coffee" if i % 2 else "tea", float(i % 9)) for i in range(40)],
    )
    return db


class TestMemoizedDigestsMatchUncached:
    def test_every_subtree_both_strictness_levels(self):
        db = build_db()
        for sql in CORPUS:
            memoized_plan = db.plan_select(sql)
            fresh_plan = db.plan_select(sql)  # never memoized as a tree
            for memo_node, fresh_node in zip(
                memoized_plan.walk(), fresh_plan.walk()
            ):
                for strict in (False, True):
                    assert fingerprint(memo_node, strict=strict) == (
                        fingerprint_uncached(fresh_node, strict=strict)
                    ), (sql, type(memo_node).__name__, strict)

    def test_subexpression_enumeration_matches_legacy(self):
        db = build_db()
        for sql in CORPUS:
            plan = db.plan_select(sql)
            legacy = _subexpressions_uncached(db.plan_select(sql))
            memoized = subexpressions(plan)
            assert [
                (s.fingerprint, s.size, s.root_code) for s in memoized
            ] == [(s.fingerprint, s.size, s.root_code) for s in legacy], sql

    def test_size_matches_node_count(self):
        db = build_db()
        for sql in CORPUS:
            plan = db.plan_select(sql)
            for node in plan.walk():
                assert fingerprints(node).size == node.node_count()

    def test_accessor_on_plan_node(self):
        db = build_db()
        plan = db.plan_select(CORPUS[7])
        assert plan.fingerprints() is fingerprints(plan)

    def test_equivalence_pairs_still_collapse(self):
        """Memoization must not weaken the canonicalisation itself."""
        db = build_db()
        permuted_a = db.plan_select("SELECT city, state FROM stores")
        permuted_b = db.plan_select("SELECT state, city FROM stores")
        assert fingerprint(permuted_a) == fingerprint(permuted_b)
        assert fingerprint(permuted_a, strict=True) != fingerprint(
            permuted_b, strict=True
        )
        aliased_a = db.plan_select(
            "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
            " ON s.id = x.store_id GROUP BY s.city"
        )
        aliased_b = db.plan_select(
            "SELECT st.city, SUM(sa.amount) FROM stores st JOIN sales sa"
            " ON st.id = sa.store_id GROUP BY st.city"
        )
        assert fingerprint(aliased_a) == fingerprint(aliased_b)


class TestMemoizationMechanics:
    def test_one_pass_then_lookups(self):
        db = build_db()
        plan = db.plan_select(CORPUS[7])
        FINGERPRINT_STATS.reset()
        fingerprint(plan, strict=True)
        after_first = FINGERPRINT_STATS.nodes_canonicalised
        assert after_first > 0
        # Every further call — root or descendant, either strictness — is
        # a cached lookup: no node is ever canonicalised again.
        for node in plan.walk():
            fingerprint(node, strict=False)
            fingerprint(node, strict=True)
        assert FINGERPRINT_STATS.nodes_canonicalised == after_first
        assert FINGERPRINT_STATS.memo_hits > 0

    def test_shared_subtrees_memoize_once_per_object(self):
        db = build_db()
        plan = db.plan_select(CORPUS[7])
        fingerprint(plan)
        FINGERPRINT_STATS.reset()
        fingerprints(plan.children()[0])  # descendant: already memoized
        assert FINGERPRINT_STATS.nodes_canonicalised == 0

    def test_shadowed_alias_falls_back_to_uncached_path(self):
        """A subquery alias that shadows an inner binding makes subtree
        binding maps diverge; the memoizer must detect it and still return
        the per-call digests."""
        db = build_db()
        sql = "SELECT t.id FROM (SELECT id FROM sales t) t WHERE t.id > 1"
        before = FINGERPRINT_STATS.shadowed_fallbacks
        plan = db.plan_select(sql)
        fresh = db.plan_select(sql)
        assert fingerprint(plan) == fingerprint_uncached(fresh)
        assert fingerprint(plan, strict=True) == fingerprint_uncached(
            fresh, strict=True
        )
        assert FINGERPRINT_STATS.shadowed_fallbacks > before
        legacy = _subexpressions_uncached(db.plan_select(sql))
        assert [
            (s.fingerprint, s.size) for s in subexpressions(plan)
        ] == [(s.fingerprint, s.size) for s in legacy]
