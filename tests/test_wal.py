"""Durability layer: WAL exact recovery, repair edge cases, kill/recover.

The headline contract is the **kill/recover differential**: a workload
interrupted after an arbitrary prefix of acknowledged operations, then
rebuilt via :meth:`AgentFirstDataSystem.recover`, serves the remaining
operations with byte-identical rows, statuses, reasons (including
"answered at turn N (agent X)" history attribution) and turn numbers to
an uninterrupted run — on both dispatch backends, with the maintenance
runtime on and off. Below it sit the exactness units: every catalog
write path replays to the exact ``version()``, repair truncates torn
frames and uncommitted admission windows, and a failed mutation leaves
no record behind.
"""

from __future__ import annotations

import glob
import os

import pytest

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.errors import WalError
from repro.storage.catalog import Catalog
from repro.txn.wal import WriteAheadLog
from repro.txn.wal import recover as wal_recover
from test_maintenance import JOIN, build_db, maintenance_config


def crash_db(db: Database) -> None:
    """Abandon a database as a crash would: no checkpoint, no flush beyond
    what each acknowledged append already wrote."""
    wal = db.wal
    db.catalog.wal = None
    wal.close()


def crash_system(system: AgentFirstDataSystem) -> None:
    """Stop serving threads and release the log file handle — everything
    acknowledged before this point must survive; nothing else may."""
    system.close()
    crash_db(system.db)


def last_segment(directory: str) -> str:
    return sorted(glob.glob(os.path.join(directory, "wal-*.seg")))[-1]


class TestExactRecovery:
    def populate(self, db: Database) -> None:
        """Exercise every logged catalog write path once."""
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, amount FLOAT)")
        db.insert_rows("t", [(i, f"n{i}", float(i)) for i in range(40)])
        db.execute("UPDATE t SET amount = 99.5 WHERE id = 7")
        db.execute("DELETE FROM t WHERE id = 3")
        db.catalog.create_hash_index("t", "name")
        db.catalog.create_sorted_index("t", "amount")
        db.catalog.create_auxiliary_hash_index("t", "name")
        db.catalog.create_auxiliary_sorted_index("t", "id")
        db.execute("CREATE TABLE gone (id INT)")
        db.execute("DROP TABLE gone")

    def test_every_write_path_replays_to_exact_version(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        self.populate(db)
        live_version = db.catalog.version()
        live_rows = db.execute("SELECT * FROM t").rows
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == live_version
        assert recovered.execute("SELECT * FROM t").rows == live_rows

    def test_replace_table_replays(self, tmp_path):
        from repro.txn import BranchManager

        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE accounts (id INT PRIMARY KEY, balance FLOAT)")
        db.insert_rows("accounts", [(i, 100.0) for i in range(20)])
        manager = BranchManager(db)
        fork = manager.fork("main", "what-if")
        fork.execute("UPDATE accounts SET balance = 0.0 WHERE id = 5")
        manager.merge("what-if")  # replays onto main via catalog writes
        live_version = db.catalog.version()
        live_rows = db.execute("SELECT * FROM accounts").rows
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == live_version
        assert recovered.execute("SELECT * FROM accounts").rows == live_rows

    def test_row_ids_continue_after_recovery(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.catalog.insert_rows("t", [(1, "a"), (2, "b")])
        db.catalog.delete_row("t", 1)
        next_before = db.catalog.table("t").next_row_id
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.table("t").next_row_id == next_before
        (new_id,) = recovered.catalog.insert_rows("t", [(3, "c")])
        assert new_id == next_before  # no reuse of the deleted row's id

    def test_failed_mutation_leaves_no_record(self, tmp_path, monkeypatch):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.catalog.insert_rows("t", [(1, "a")])
        wal = db.wal
        lsn_before = wal.last_lsn
        seq_before = wal.data_seq
        version_before = db.catalog.version()

        def boom(*args, **kwargs):
            raise RuntimeError("disk full mid-mutation")

        monkeypatch.setattr(db.catalog.table("t"), "update", boom)
        with pytest.raises(RuntimeError, match="disk full"):
            db.catalog.update_row("t", 0, (1, "z"))
        monkeypatch.undo()

        # The append was rolled back: same LSN, same data_seq, and the
        # next write reuses the slot cleanly.
        assert wal.last_lsn == lsn_before
        assert wal.data_seq == seq_before
        assert db.catalog.version() == version_before
        db.catalog.update_row("t", 0, (1, "ok"))
        crash_db(db)
        recovered = Database.recover(str(tmp_path))
        assert recovered.execute("SELECT name FROM t").rows == [("ok",)]

    def test_attach_refuses_non_fresh_directory(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT)")
        crash_db(db)
        fresh = Database("other", wal_dir=False)
        with pytest.raises(WalError, match="recover"):
            fresh.attach_wal(str(tmp_path))


class TestRecoveryEdgeCases:
    def test_empty_wal_directory_recovers_fresh(self, tmp_path):
        # Never-attached directory: nothing to replay, a usable fresh log.
        state = wal_recover(str(tmp_path))
        assert state.catalog.version() == Catalog().version()
        assert state.serve.empty
        state.wal.close()

    def test_recover_right_after_attach(self, tmp_path):
        # Attach writes the initial checkpoint and nothing else.
        db = Database("wal", wal_dir=str(tmp_path))
        version = db.catalog.version()
        crash_db(db)
        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == version
        recovered.execute("CREATE TABLE t (id INT)")  # still appendable
        assert recovered.wal.data_seq == 1

    def test_checkpoint_with_no_tail(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.insert_rows("t", [(i, f"n{i}") for i in range(600)])
        db.execute("DELETE FROM t WHERE id = 17")
        assert db.checkpoint() is not None
        live_version = db.catalog.version()
        live_rows = db.execute("SELECT * FROM t").rows
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        # Replay had zero tail records to apply: the checkpoint alone
        # restores the exact version.
        assert recovered.wal.replay_records() == []
        assert recovered.catalog.version() == live_version
        assert recovered.execute("SELECT * FROM t").rows == live_rows

    def test_torn_final_record_recovers_to_last_committed(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.catalog.insert_rows("t", [(i, f"n{i}") for i in range(5)])
        committed_version = db.catalog.version()
        db.catalog.insert_rows("t", [(99, "torn")])  # the record to tear
        crash_db(db)

        segment = last_segment(str(tmp_path))
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 3)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == committed_version
        assert recovered.execute(
            "SELECT COUNT(*) FROM t WHERE id = 99"
        ).first_value() == 0
        # The repaired log is cleanly appendable and re-recoverable.
        recovered.catalog.insert_rows("t", [(100, "after")])
        crash_db(recovered)
        again = Database.recover(str(tmp_path))
        assert again.execute("SELECT name FROM t WHERE id = 100").rows == [
            ("after",)
        ]

    def test_torn_tail_after_checkpoint_recovers_to_checkpoint(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.insert_rows("t", [(i, f"n{i}") for i in range(10)])
        assert db.checkpoint() is not None
        checkpoint_version = db.catalog.version()
        db.catalog.insert_rows("t", [(99, "torn")])
        crash_db(db)

        segment = last_segment(str(tmp_path))
        with open(segment, "r+b") as handle:
            handle.truncate(os.path.getsize(segment) - 1)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == checkpoint_version

    def test_uncommitted_window_discarded(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.catalog.insert_rows("t", [(1, "before")])
        committed_version = db.catalog.version()

        # A window opens, logs a write, and the process dies before the
        # commit record: the caller never saw a response, so recovery
        # must discard the write.
        db.wal.begin_window()
        db.catalog.insert_rows("t", [(2, "lost")])
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == committed_version
        assert recovered.execute("SELECT name FROM t").rows == [("before",)]
        # The truncation is physical: the reopened log hands out the
        # discarded LSNs again instead of leaving holes.
        assert not recovered.wal.window_open

    def test_aux_index_replays_fresh_not_stale(self, tmp_path):
        db = Database("wal", wal_dir=str(tmp_path))
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
        db.catalog.insert_rows("t", [(i, f"n{i}") for i in range(30)])
        db.catalog.create_auxiliary_hash_index("t", "name")
        # Catalog-mediated writes after the build keep the entry fresh on
        # the live side; replay must reproduce that, not leave the index
        # pinned at its build-time version.
        db.catalog.update_row("t", 2, (2, "renamed"))
        db.catalog.insert_rows("t", [(77, "late")])
        live_version = db.catalog.version()
        live_entry = db.catalog._aux_hash_indexes[("t", "name")]
        assert live_entry.data_version == db.catalog.table("t").data_version
        crash_db(db)

        recovered = Database.recover(str(tmp_path))
        assert recovered.catalog.version() == live_version  # incl. aux counter
        entry = recovered.catalog._aux_hash_indexes[("t", "name")]
        table = recovered.catalog.table("t")
        assert entry.data_version == table.data_version  # rebuilt, not stale
        assert entry.index.lookup("late") or entry.index.lookup("renamed")


class TestServeStateRecovery:
    def make_system(self, wal_dir: str) -> AgentFirstDataSystem:
        return AgentFirstDataSystem(build_db(wal_dir=wal_dir))

    def test_history_attribution_survives_recovery(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        system = self.make_system(wal_dir)
        system.submit(Probe(queries=(JOIN,), agent_id="alice"))
        original = system.submit(Probe(queries=(JOIN,), agent_id="bob"))
        assert original.outcomes[0].status == "from_history"
        crash_system(system)

        recovered = AgentFirstDataSystem.recover(wal_dir)
        assert recovered.turn == 2  # the turn counter continues, not resets
        replayed = recovered.submit(Probe(queries=(JOIN,), agent_id="carol"))
        assert replayed.turn == 3
        assert replayed.outcomes[0].status == "from_history"
        # Attribution points at the original answering turn and agent.
        assert replayed.outcomes[0].reason == original.outcomes[0].reason
        recovered.close()

    def test_invalidated_history_stays_invalid(self, tmp_path):
        wal_dir = str(tmp_path / "wal")
        system = self.make_system(wal_dir)
        system.submit(Probe(queries=(JOIN,), agent_id="alice"))
        system.db.execute("INSERT INTO sales VALUES (9001, 2, 'tea', 7.5)")
        crash_system(system)

        recovered = AgentFirstDataSystem.recover(wal_dir)
        # The invalidation record replayed: the pre-write answer must not
        # come back from history against the post-write data.
        response = recovered.submit(Probe(queries=(JOIN,), agent_id="bob"))
        assert response.outcomes[0].status == "ok"
        twin = AgentFirstDataSystem(build_db())
        twin.db.execute("INSERT INTO sales VALUES (9001, 2, 'tea', 7.5)")
        assert response.outcomes[0].result.rows == (
            twin.submit(Probe(queries=(JOIN,), agent_id="bob"))
            .outcomes[0]
            .result.rows
        )
        recovered.close()
        twin.close()


# -- the kill/recover differential -------------------------------------------------

EQ = "SELECT COUNT(*) FROM sales WHERE store_id = {k}"


def script_ops() -> list[tuple]:
    """Probes and writes interleaved so the kill point can land between
    history warm-up, invalidation, and re-warm-up."""
    return [
        ("probe", lambda: Probe(queries=(JOIN,), agent_id="a1")),
        ("probe", lambda: Probe(queries=(EQ.format(k=2),), agent_id="a2")),
        ("probe", lambda: Probe(queries=(JOIN,), agent_id="a3")),  # history hit
        ("write", "INSERT INTO sales VALUES (9001, 2, 'tea', 7.5)"),
        ("maintain",),
        ("probe", lambda: Probe(queries=(JOIN, EQ.format(k=1)), agent_id="a4")),
        ("write", "UPDATE sales SET amount = 11.0 WHERE id = 9001"),
        ("write", "DELETE FROM sales WHERE id = 3"),
        ("probe", lambda: Probe(queries=(JOIN,), agent_id="a5")),
        ("maintain",),
        ("probe", lambda: Probe(queries=(JOIN,), agent_id="a6")),  # history hit
        ("probe", lambda: Probe(queries=("SELECT COUNT(*) FROM sales",), agent_id="a7")),
    ]


def run_ops(system: AgentFirstDataSystem, ops: list[tuple]) -> list:
    sigs = []
    for op in ops:
        if op[0] == "probe":
            response = system.submit(op[1]())
            sigs.append(
                (
                    response.turn,
                    [
                        (
                            o.sql,
                            o.status,
                            o.reason,
                            o.query_index,
                            None if o.result is None else o.result.rows,
                        )
                        for o in response.outcomes
                    ],
                )
            )
        elif op[0] == "write":
            system.db.execute(op[1])
            sigs.append(("write", op[1]))
        else:
            system.maintenance.run_pending()
            sigs.append(("maintain",))
    return sigs


def table_rows(db: Database) -> dict:
    return {t: db.execute(f"SELECT * FROM {t}").rows for t in ("stores", "sales")}


class TestKillRecoverDifferential:
    def run_differential(self, backend, maintenance, kill_after, wal_dir):
        config = SystemConfig(
            enable_maintenance=maintenance,
            maintenance=maintenance_config() if maintenance else None,
            dispatch_backend=backend,
        )
        workers = 2 if backend == "process" else None
        ops = script_ops()

        reference = AgentFirstDataSystem(build_db(), config=config, workers=workers)
        ref_sigs = run_ops(reference, ops)
        ref_rows = table_rows(reference.db)
        ref_version = reference.db.catalog.data_version_tuple()
        reference.close()

        victim = AgentFirstDataSystem(
            build_db(wal_dir=wal_dir), config=config, workers=workers
        )
        assert run_ops(victim, ops[:kill_after]) == ref_sigs[:kill_after]
        crash_system(victim)

        recovered = AgentFirstDataSystem.recover(
            wal_dir, config=config, workers=workers
        )
        try:
            assert run_ops(recovered, ops[kill_after:]) == ref_sigs[kill_after:]
            assert table_rows(recovered.db) == ref_rows
            # data_version_tuple, not version(): with maintenance on, the
            # aux-index counter depends on when idle builds landed relative
            # to the kill, which no row can observe.
            assert recovered.db.catalog.data_version_tuple() == ref_version
        finally:
            recovered.close()

    @pytest.mark.parametrize("maintenance", [False, True])
    def test_thread_backend(self, maintenance, tmp_path):
        for kill_after in (2, 5, 9):
            self.run_differential(
                None,
                maintenance,
                kill_after,
                str(tmp_path / f"wal-{maintenance}-{kill_after}"),
            )

    @pytest.mark.parametrize("maintenance", [False, True])
    def test_process_backend(self, maintenance, tmp_path):
        self.run_differential(
            "process", maintenance, 5, str(tmp_path / f"walp-{maintenance}")
        )
