"""Tests for semantic operators: embeddings, inverted index, anywhere-search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db import Database
from repro.semantic import (
    HashedEmbedder,
    InvertedIndex,
    Location,
    SemanticSearch,
    cosine_similarity,
)


class TestEmbedder:
    def test_deterministic(self):
        embedder = HashedEmbedder()
        assert np.allclose(embedder.embed("coffee sales"), embedder.embed("coffee sales"))

    def test_unit_norm(self):
        vector = HashedEmbedder().embed("electronics")
        assert np.linalg.norm(vector) == pytest.approx(1.0)

    def test_empty_text_zero_vector(self):
        assert np.linalg.norm(HashedEmbedder().embed("")) == 0.0

    def test_similar_strings_closer_than_random(self):
        embedder = HashedEmbedder()
        base = embedder.embed("electronic goods")
        close = embedder.embed("electronics")
        far = embedder.embed("flight crew roster")
        assert cosine_similarity(base, close) > cosine_similarity(base, far)

    def test_plural_folding(self):
        embedder = HashedEmbedder()
        similarity = cosine_similarity(embedder.embed("store"), embedder.embed("stores"))
        assert similarity > 0.8

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            HashedEmbedder(dims=0)

    def test_cosine_zero_for_zero_vector(self):
        embedder = HashedEmbedder()
        assert cosine_similarity(embedder.embed(""), embedder.embed("x")) == 0.0


class TestInvertedIndex:
    def test_add_and_lookup(self):
        index = InvertedIndex()
        loc = Location("table_name", "sales")
        index.add_text("sales data", loc)
        assert index.lookup("sales") == {loc}
        assert index.lookup("data") == {loc}

    def test_singular_plural_fold(self):
        index = InvertedIndex()
        loc = Location("table_name", "stores")
        index.add_text("stores", loc)
        assert index.lookup("store") == {loc}

    def test_phrase_counts(self):
        index = InvertedIndex()
        loc = Location("column_name", "t", "coffee_sales")
        index.add_text("coffee sales", loc)
        hits = index.lookup_phrase("coffee bean sales")
        assert hits[loc] == 2

    def test_missing_token_empty(self):
        assert InvertedIndex().lookup("ghost") == set()

    def test_clear(self):
        index = InvertedIndex()
        index.add_text("x", Location("table_name", "t"))
        index.clear()
        assert index.vocabulary_size() == 0


@pytest.fixture
def shop_db() -> Database:
    db = Database("shop")
    db.execute(
        "CREATE TABLE electronic_goods (id INT, product_name TEXT, price FLOAT)"
    )
    db.execute("CREATE TABLE coffee_sales (id INT, city TEXT, revenue FLOAT)")
    db.execute("CREATE TABLE hr_roster (id INT, employee TEXT)")
    db.execute(
        "INSERT INTO electronic_goods VALUES (1,'laptop',999.0),(2,'tariff-free tv',499.0)"
    )
    db.execute(
        "INSERT INTO coffee_sales VALUES (1,'Berkeley',120.0),(2,'Oakland',80.0)"
    )
    db.execute("INSERT INTO hr_roster VALUES (1,'Ada'),(2,'Grace')")
    return db


class TestSemanticSearch:
    def test_finds_table_by_related_phrase(self, shop_db):
        search = SemanticSearch(shop_db)
        tables = search.find_tables("electronics import tariffs")
        assert tables[0] == "electronic_goods"

    def test_finds_value_in_cells(self, shop_db):
        search = SemanticSearch(shop_db)
        hits = search.search("Berkeley")
        cell_hits = [h for h in hits if h.location.kind == "cell"]
        assert cell_hits
        assert cell_hits[0].location.table == "coffee_sales"
        assert cell_hits[0].location.row_id is not None

    def test_finds_column(self, shop_db):
        search = SemanticSearch(shop_db)
        columns = search.find_columns("product names")
        assert ("electronic_goods", "product_name") in columns

    def test_kind_filter(self, shop_db):
        search = SemanticSearch(shop_db)
        hits = search.search("coffee", kinds=("table_name",))
        assert all(h.location.kind == "table_name" for h in hits)

    def test_refresh_after_ddl(self, shop_db):
        search = SemanticSearch(shop_db)
        assert "tariff" not in " ".join(search.find_tables("spice inventory"))
        shop_db.execute("CREATE TABLE spice_inventory (id INT, spice TEXT)")
        tables = search.find_tables("spice inventory")
        assert tables[0] == "spice_inventory"

    def test_refresh_after_dml(self, shop_db):
        search = SemanticSearch(shop_db)
        search.refresh()
        shop_db.execute("INSERT INTO coffee_sales VALUES (3, 'Zanzibar', 10.0)")
        hits = search.search("Zanzibar")
        assert any(h.location.kind == "cell" for h in hits)

    def test_limit_respected(self, shop_db):
        search = SemanticSearch(shop_db)
        assert len(search.search("id", limit=2)) <= 2

    def test_describe_is_readable(self, shop_db):
        search = SemanticSearch(shop_db)
        hits = search.search("coffee")
        assert any("coffee" in h.describe() for h in hits)

    def test_no_match_empty(self, shop_db):
        search = SemanticSearch(shop_db)
        assert search.search("xylophone zither") == []
