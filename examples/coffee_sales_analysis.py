"""The paper's motivating example: an army of agents investigates why
coffee-bean profits in Berkeley dropped this year.

Many field agents issue overlapping analytical probes in parallel. The
agent-first system shares work across them (multi-query optimization over
canonical plan fingerprints), satisfices exploration-phase probes with
sampling, and accumulates grounding in the agentic memory store. We report
how much engine work sharing saved — the quantitative core of paper
Sec. 5.2.1.

Run:  python examples/coffee_sales_analysis.py
"""

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database
from repro.util.rng import RngStream
from repro.workloads.datagen import DataGenerator


def build_db(seed: int = 3) -> Database:
    rng = RngStream(seed, "coffee")
    gen = DataGenerator(rng)
    db = Database("coffee")
    db.execute(
        "CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)"
    )
    db.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, store_id INT, product TEXT,"
        " amount FLOAT, cost FLOAT, year INT)"
    )
    cities = ["Berkeley", "Oakland", "Seattle", "Austin"]
    db.insert_rows(
        "stores",
        [(i + 1, cities[i % 4], gen.state()) for i in range(12)],
    )
    rows = []
    for i in range(4000):
        year = 2023 if rng.bernoulli(0.5) else 2024
        store = rng.randint(1, 12)
        is_coffee = rng.bernoulli(0.6)
        product = "Coffee Beans" if is_coffee else gen.product()
        amount = gen.amount(5, 80)
        # The planted story: 2024 Berkeley coffee margins collapsed.
        berkeley = store % 4 == 1
        margin = 0.45 if not (berkeley and is_coffee and year == 2024) else 0.05
        rows.append((i, store, product, amount, round(amount * (1 - margin), 2), year))
    db.insert_rows("sales", rows)
    return db


# The army's probes: heavily overlapping slices of the same question.
PROBE_SQL = [
    "SELECT s.city, SUM(x.amount) AS revenue FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2024 GROUP BY s.city",
    "SELECT s.city, SUM(x.amount) AS revenue FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2023 GROUP BY s.city",
    "SELECT s.city, SUM(x.amount - x.cost) AS profit FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2024 GROUP BY s.city",
    "SELECT s.city, SUM(x.amount - x.cost) AS profit FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2023 GROUP BY s.city",
    "SELECT s.city, SUM(x.amount - x.cost) AS profit FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2024 AND x.product = 'Coffee Beans'"
    " GROUP BY s.city",
    "SELECT s.city, SUM(x.amount - x.cost) AS profit FROM stores s JOIN sales x"
    " ON s.id = x.store_id WHERE x.year = 2023 AND x.product = 'Coffee Beans'"
    " GROUP BY s.city",
]


def investigate(system: AgentFirstDataSystem, agents: int = 6) -> int:
    """Each agent probes a rotation of the overlapping queries."""
    total_rows_processed = 0
    for agent_index in range(agents):
        queries = tuple(
            PROBE_SQL[(agent_index + offset) % len(PROBE_SQL)] for offset in range(3)
        )
        response = system.submit(
            Probe(
                queries=queries,
                brief=Brief(goal="compute the exact profit comparison by city"),
                agent_id=f"field-{agent_index}",
            )
        )
        total_rows_processed += response.rows_processed
    return total_rows_processed


def main() -> None:
    db = build_db()
    shared = AgentFirstDataSystem(db)
    work_shared = investigate(shared)

    db2 = build_db()
    unshared = AgentFirstDataSystem(
        db2, config=SystemConfig(enable_mqo=False, enable_history=False)
    )
    work_unshared = investigate(unshared)

    print("== the finding ==")
    result = db.execute(PROBE_SQL[4])
    print(result.to_text())
    result_2023 = db.execute(PROBE_SQL[5])
    print(result_2023.to_text())
    print("(Berkeley's 2024 coffee profit collapsed relative to 2023.)")

    print("\n== work sharing across the agent army ==")
    print(f"rows processed with sharing:    {work_shared:>10,}")
    print(f"rows processed without sharing: {work_unshared:>10,}")
    saved = 1 - work_shared / work_unshared
    print(f"engine work saved:              {saved:>10.1%}")

    print("\n== materialization advice ==")
    for suggestion in shared.materialization_suggestions()[:3]:
        built = " [materialized]" if suggestion.materialized else ""
        print(f"seen {suggestion.count}x: {suggestion.description}{built}")


if __name__ == "__main__":
    main()
