"""Case study 2: a cross-backend data task, end to end.

Customer profiles live in a Mongo-style document store; interaction events
live in a mini-DuckDB. The task — total event volume for one customer
segment — cannot be answered by either backend alone. We run the simulated
agent twice (without and with expert hints) and print its labeled trace:
the raw material of the paper's Figure 3 and Table 1.

Run:  python examples/multibackend_cleaning.py
"""

from repro.agents import CrossBackendAgent, GPT_4O_MINI_SIM, HintSet
from repro.util.rng import RngStream
from repro.workloads.multibackend import build_cross_backend_tasks


def run_once(task, hints, label: str) -> None:
    agent = CrossBackendAgent(
        task, GPT_4O_MINI_SIM, RngStream(1, "demo", label), hints=hints
    )
    outcome = agent.run()
    print(f"== {label} ==")
    for event in outcome.trace.events:
        status = "ok" if event.ok else "ERR"
        print(f"  [{event.activity.value:<28}] {status:>3}  {event.request}")
    print(
        f"  -> answer {outcome.answer} (gold {task.gold_value}),"
        f" {'correct' if outcome.success else 'wrong'},"
        f" {len(outcome.trace)} backend interactions"
    )
    counts = outcome.trace.activity_counts()
    summary = ", ".join(
        f"{activity.value}: {count}"
        for activity, count in counts.items()
        if count
    )
    print(f"  activity counts: {summary}\n")


def main() -> None:
    task = build_cross_backend_tasks(seed=5, n_tasks=1)[0]
    print(f"task: {task.description}\n")
    print(
        f"backends: {task.doc_backend} (documents: string keys,"
        f" '{task.filter_value}' encoding) + {task.rel_backend}"
        f" (rows: integer keys)\n"
    )
    run_once(task, hints=None, label="no hints")
    run_once(task, hints=HintSet(), label="with expert hints")


if __name__ == "__main__":
    main()
