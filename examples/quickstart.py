"""Quickstart: an agent-first data system in 100 lines.

Builds a small database, wraps it in an :class:`AgentFirstDataSystem`, and
submits probes the way an LLM agent would: SQL plus a natural-language
brief. The system answers, steers (why-not provenance, join discovery,
history pointers), remembers grounding — and serves whole swarms of
concurrent agents: hand a batch to ``submit_many``, or just open sessions
and stream probes in; the gateway's admission loop forms the batches and
shares duplicated work across agents that never coordinated.

Run:  python examples/quickstart.py
"""

import asyncio

from repro.core import AgentFirstDataSystem, Brief, Probe, SystemConfig
from repro.db import Database


def main() -> None:
    db = Database("quickstart")
    db.execute(
        "CREATE TABLE stores (id INT PRIMARY KEY, city TEXT, state TEXT)"
    )
    db.execute(
        "CREATE TABLE sales (id INT PRIMARY KEY, store_id INT,"
        " product TEXT, amount FLOAT)"
    )
    db.execute(
        "INSERT INTO stores VALUES (1,'Berkeley','California'),"
        "(2,'Oakland','California'),(3,'Seattle','Washington')"
    )
    db.execute(
        "INSERT INTO sales VALUES (1,1,'coffee',120.5),(2,1,'tea',30.0),"
        "(3,2,'coffee',80.0),(4,3,'coffee',200.0)"
    )

    system = AgentFirstDataSystem(db)

    # 1. An exploration probe: metadata + anywhere-token semantic search.
    response = system.submit(
        Probe(
            queries=("SELECT table_name, row_count FROM information_schema.tables",),
            brief=Brief(goal="explore which tables hold coffee sales data"),
            semantic_search="coffee sales revenue",
        )
    )
    print("== exploration ==")
    print(response.first_result().to_text())
    for hit in response.semantic_hits[:3]:
        print("semantic:", hit.describe())
    for hint in response.steering:
        print("steering:", hint)

    # 2. A mistaken probe: the agent guesses 'CA'; the data spells it out.
    response = system.submit(
        Probe.sql("SELECT * FROM stores WHERE state = 'CA'", goal="final answer")
    )
    print("\n== why-not steering ==")
    print("rows returned:", response.first_result().row_count)
    for hint in response.steering:
        print("steering:", hint)

    # 3. The corrected probe, then a repeat by a different agent: the second
    #    ask is answered from history without touching the table.
    system.submit(
        Probe.sql(
            "SELECT COUNT(*) FROM stores WHERE state = 'California'",
            goal="compute the exact count",
        )
    )
    repeat = system.submit(
        Probe(
            queries=("SELECT COUNT(*) FROM stores WHERE state = 'California'",),
            agent_id="second-agent",
        )
    )
    print("\n== cross-agent history reuse ==")
    print("status:", repeat.outcomes[0].status, "|", repeat.outcomes[0].reason)
    print("answer:", repeat.first_result().first_value())

    # 4. Serving concurrent swarms: many agents, one admission batch.
    #    submit_many interprets every probe up front, runs the batch's
    #    independent work groups concurrently on the scheduler's worker
    #    pool (configurable via AgentFirstDataSystem(..., workers=N)),
    #    replays dispatch round-robin across agents, and materialises each
    #    distinct sub-plan once batch-wide — the answers are identical to
    #    serial submission, the engine work (and wall-clock) is not.
    swarm = [
        Probe(
            queries=(
                "SELECT s.city, SUM(x.amount) FROM stores s"
                " JOIN sales x ON s.id = x.store_id GROUP BY s.city",
                f"SELECT COUNT(*) FROM sales WHERE store_id = {1 + agent % 2}",
            ),
            brief=Brief(goal="compute the exact revenue per city"),
            agent_id=f"swarm-agent-{agent}",
        )
        for agent in range(8)
    ]
    responses = system.submit_many(swarm)
    report = responses[0].sharing
    print("\n== serving a concurrent swarm ==")
    print(
        f"{report.agents} agents, {report.queries} queries:"
        f" {report.total_subplans} sub-plans, {report.distinct_subplans} distinct"
        f" ({report.duplicate_fraction:.0%} duplicates),"
        f" {report.cross_agent_subplans} shared across agents"
    )
    for hint in responses[-1].steering:
        if "other agent" in hint:
            print("steering:", hint)

    # 5. A *streaming* swarm: the batch as an emergent property. Each
    #    agent opens a session (sticky identity + brief defaults — no
    #    per-probe agent_id/principal plumbing) and submits independently;
    #    session.submit returns a ProbeTicket immediately, and the
    #    gateway's admission loop coalesces whatever is in flight across
    #    sessions into admission windows (close at max_batch pending or
    #    max_wait elapsed, both on SystemConfig). Window boundaries never
    #    change an answer — only how much work gets shared when.
    print("\n== streaming swarm: sessions + tickets ==")
    sessions = [
        system.session(
            agent_id=f"stream-agent-{agent}",
            defaults=Brief(goal="compute the exact revenue per city"),
        )
        for agent in range(6)
    ]
    tickets = [
        session.submit(
            Probe(
                queries=(
                    "SELECT s.city, SUM(x.amount) FROM stores s"
                    " JOIN sales x ON s.id = x.store_id GROUP BY s.city",
                ),
            )
        )
        for session in sessions
    ]
    print("tickets issued:", len(tickets), "| done yet?", tickets[-1].done())
    system.gateway.flush()  # optional: close the window now, skip the timer
    for ticket in tickets:
        ticket.result(timeout=30.0)
    print("answer:", tickets[0].result().first_result().to_text().splitlines()[0])
    print(sessions[0].describe())
    print("gateway:", system.gateway.stats()["windows_streamed"], "window(s) formed")

    # 6. The same loop, from asyncio: `await session.asubmit(probe)` and
    #    `async for response in gateway.serve(aiter_of_probes)`.
    async def async_swarm() -> None:
        session = system.session(agent_id="async-agent")
        response = await session.asubmit(
            Probe.sql("SELECT COUNT(*) FROM sales", goal="exact count")
        )
        print("asubmit:", response.first_result().first_value(), "sales rows")

        async def arrivals():
            for store in (1, 2, 3):
                yield Probe.sql(f"SELECT COUNT(*) FROM sales WHERE store_id = {store}")

        counts = [
            response.first_result().first_value()
            async for response in system.gateway.serve(arrivals(), session=session)
        ]
        print("streamed counts per store:", counts)

    print("\n== asyncio surface ==")
    asyncio.run(async_swarm())

    # 7. Choosing a dispatch backend for the scheduler's speculative
    #    phase. "thread" (the default) shares this process's catalog and
    #    cache, but the GIL serialises pure-Python engine work; "process"
    #    runs each batch's independent engine runs in spawned workers fed
    #    versioned catalog snapshots — real cores, re-shipped only when a
    #    write bumps the catalog version. "auto" picks process exactly
    #    when threads can't parallelise on a multi-core host. Env
    #    override: REPRO_SCHEDULER_BACKEND; `system.prestart()` warms
    #    the worker pool ahead of the first batch (`system.close()` is
    #    its lifecycle pair).
    tuned = AgentFirstDataSystem(
        Database("backend-demo"),
        config=SystemConfig(dispatch_backend="auto"),
        workers=2,
    )
    print("\n== dispatch backend ==")
    print("auto resolved to:", tuned.prestart(), "on this host")
    tuned.close()

    # 8. Choosing an execution engine. "row" (the default) interprets
    #    plans tuple-at-a-time; "columnar" executes the same plans as
    #    batch-at-a-time kernels over per-column arrays — ~5x faster on
    #    scan-heavy analytics, with per-node fallback to the row engine
    #    for anything unvectorized (subquery predicates, index scans).
    #    The knob may change speed, never an answer: rows, stats,
    #    steering, and errors are byte-identical, and both engines share
    #    one subplan-cache keying, so they can even serve each other's
    #    cached results. Env override: REPRO_ENGINE ("auto" = columnar).
    vectorized = AgentFirstDataSystem(
        db, config=SystemConfig(engine="columnar")
    )
    print("\n== columnar engine ==")
    print(
        "columnar answer:",
        vectorized.submit(
            Probe.sql("SELECT SUM(amount) FROM sales")
        ).first_result().first_value(),
        "(identical to the row engine's, just vectorized)",
    )

    # 9. The sleeper-agent maintenance runtime: idle windows between
    #    turns are spent acting on the advisors — hot recurring subplans
    #    become materialized views, repeated equality/range predicates
    #    become auto-built (planner-invisible) indexes, statistics are
    #    refreshed after write bursts, and evicted hot cache entries are
    #    re-installed. Answers are byte-identical with maintenance on or
    #    off; repeated workloads just get faster turn over turn. Enable
    #    via SystemConfig(enable_maintenance=True) or REPRO_MAINTENANCE=1;
    #    a streaming gateway triggers it automatically on idle —
    #    run_pending() is the same machinery invoked synchronously.
    from repro.maintenance import MaintenanceConfig

    maintained = AgentFirstDataSystem(
        db,
        config=SystemConfig(
            enable_maintenance=True,
            # Tiny demo data: lower the hotness thresholds so the loop
            # shows within a few turns (production defaults are higher).
            maintenance=MaintenanceConfig(view_min_occurrences=2, index_min_rows=1),
        ),
    )
    hot = Probe.sql(
        "SELECT s.city, SUM(x.amount) FROM stores s"
        " JOIN sales x ON s.id = x.store_id GROUP BY s.city",
        goal="compute the exact revenue per city",
    )
    print("\n== sleeper-agent maintenance ==")
    for turn in range(4):
        # A write burst between turns invalidates history and caches —
        # without maintenance, every turn would recompute the join.
        db.execute(f"INSERT INTO sales VALUES ({100 + turn},3,'tea',12.5)")
        maintained.maintenance.run_pending()  # the idle window
        response = maintained.submit(hot)
        print(
            f"turn {turn}: {response.rows_processed} rows processed"
            + "".join(
                f"\n  * {hint}" for hint in response.steering if "sleeper" in hint
            )
        )
    for suggestion in maintained.materialization_suggestions()[:2]:
        flag = "materialized" if suggestion.materialized else "pending"
        print(f"advice [{flag}]: seen {suggestion.count}x: {suggestion.description}")
    maintained.close()

    # 10. What the system has learned along the way.
    print("\n== agentic memory ==")
    for artifact in system.memory.artifacts_about("stores"):
        print(artifact.describe())

    # 11. Durability and read replicas: pass a wal_dir (or set REPRO_WAL=1)
    #     and every catalog write appends to an on-disk write-ahead log
    #     *before* mutating state. After a crash, ``recover`` rebuilds the
    #     exact pre-crash state — rows, version counters, the turn counter,
    #     even the answered-before history with its attribution. The same
    #     log feeds in-process read replicas: a probe whose brief declares
    #     a staleness tolerance (``Brief(max_staleness=N)``) may be served
    #     by a replica, always with an explicit staleness hint.
    import shutil
    import tempfile

    wal_dir = tempfile.mkdtemp(prefix="quickstart-wal-")
    durable_db = Database("durable", wal_dir=wal_dir)
    durable_db.execute("CREATE TABLE events (id INT PRIMARY KEY, kind TEXT)")
    durable_db.insert_rows("events", [(i, "click") for i in range(50)])
    durable = AgentFirstDataSystem(
        durable_db, config=SystemConfig(read_replicas=1)
    )
    durable.submit(
        Probe(queries=("SELECT COUNT(*) FROM events",), agent_id="alice")
    )
    # Crash: abandon the system without any shutdown courtesy. Everything
    # acknowledged is already on disk.
    durable.close()
    abandoned_wal = durable_db.wal
    durable_db.catalog.wal = None
    abandoned_wal.close()

    recovered = AgentFirstDataSystem.recover(
        wal_dir, config=SystemConfig(read_replicas=1)
    )
    repeat = recovered.submit(
        Probe(queries=("SELECT COUNT(*) FROM events",), agent_id="bob")
    )
    print("\n== durability: crash recovery + read replicas ==")
    print("recovered rows:", repeat.first_result().first_value())
    print("status:", repeat.outcomes[0].status, "|", repeat.outcomes[0].reason)
    bounded = recovered.replicas.try_serve(
        Probe(
            queries=("SELECT COUNT(*) FROM events",),
            brief=Brief(max_staleness=5),
            agent_id="carol",
        )
    )
    for hint in bounded.steering:
        print("steering:", hint)
    recovered.close()
    recovered_wal = recovered.db.wal
    recovered.db.catalog.wal = None
    recovered_wal.close()
    shutil.rmtree(wal_dir, ignore_errors=True)

    # 12. Overload control & agent QoS: enable_qos=True (or REPRO_QOS=1)
    #     adds priority lanes, per-principal token buckets, and
    #     degrade-don't-drop load shedding to the streaming gateway. The
    #     layer is watermark-gated — an unloaded QoS-on system serves
    #     byte-identically to a QoS-off one. Here we flood a tiny
    #     watermark on purpose: bulk-lane probes get *sampled* answers
    #     with a steering line naming the cause, while the interactive
    #     lane jumps the queue and stays exact.
    from repro.qos import QosConfig

    loaded_db = Database("loaded")
    loaded_db.execute("CREATE TABLE clicks (id INT PRIMARY KEY, page TEXT)")
    loaded_db.insert_rows(
        "clicks", [(i, ("home", "cart", "search")[i % 3]) for i in range(300)]
    )
    loaded = AgentFirstDataSystem(
        loaded_db,
        config=SystemConfig(
            enable_qos=True,
            qos=QosConfig(queue_high=3, shed_sample_rate=0.1),
            gateway_max_batch=64,
            gateway_max_wait=30.0,
        ),
    )
    background = [
        loaded.gateway.submit(
            Probe(
                queries=("SELECT page, COUNT(*) FROM clicks GROUP BY page",),
                brief=Brief(lane="bulk"),  # self-declared background work
                agent_id=f"sweeper-{i}",
            )
        )
        for i in range(6)
    ]
    urgent = loaded.gateway.submit(
        Probe(
            queries=("SELECT COUNT(*) FROM clicks",),
            brief=Brief(goal="verify the click count"),  # validation: interactive
            agent_id="checker",
        )
    )
    loaded.gateway.flush()
    print("\n== overload control: priority lanes + degraded-mode serving ==")
    urgent_response = urgent.result(timeout=60.0)
    print(
        "interactive lane:",
        urgent_response.outcomes[0].status,
        "| turn",
        urgent_response.turn,
        "(served ahead of 6 earlier bulk arrivals)",
    )
    degraded = background[0].result(timeout=60.0)
    print("bulk lane:", degraded.outcomes[0].status)
    for hint in degraded.steering:
        if "system under load" in hint:
            print("steering:", hint)
    stats = loaded.gateway.stats()
    print(
        "gateway: overload windows",
        stats["overload_windows"],
        "| probes degraded",
        stats["probes_degraded"],
        "| lanes",
        stats["qos"]["lane_counts"],
    )
    loaded.gateway.close()

    # 13. Scaling out: the sharded serving tier. Partition a fact table
    # by tenant across 4 complete systems; sessions land on their
    # tenant's home shard, tenant-pinned probes prune to the owner
    # shard, and genuinely cross-tenant aggregates scatter-gather with
    # partial aggregates merged at the router (AVG via SUM+COUNT).
    from repro.shard import ShardedSystem

    tenants_db = Database("tenants")
    tenants_db.execute("CREATE TABLE orders (tenant TEXT, amount FLOAT)")
    tenants_db.insert_rows(
        "orders",
        [(f"t{i % 8}", float(10 + i % 50)) for i in range(400)],
    )
    tier = ShardedSystem(tenants_db, shards=4, partition={"orders": "tenant"})
    print("\n== sharded multi-tenant serving tier ==")
    session = tier.session(agent_id="acme-agent", principal="t3")
    print("session home shard:", session.shard_id, "(sticky for principal t3)")
    local = session.submit(
        Probe.sql("SELECT COUNT(*), SUM(amount) FROM orders WHERE tenant = 't3'")
    ).result(timeout=60.0)
    print(
        "tenant-local probe:",
        local.outcomes[0].result.rows,
        "| scatter lines:",
        sum("scatter-gather" in line for line in local.steering),
    )
    global_answer = tier.submit(
        Probe.sql("SELECT COUNT(*), AVG(amount) FROM orders")
    )
    print("cross-shard probe:", global_answer.outcomes[0].result.rows)
    for hint in global_answer.steering:
        print("steering:", hint)
    tier_stats = tier.stats()
    print(
        "tier: shards",
        tier_stats["shards"],
        "| windows served",
        tier_stats["windows_served"],
        "| matchmaker",
        tier_stats["matchmaker"]["units_matched"],
        "units matched",
    )
    tier.close()

    # 14. Watching the system think: the observability layer. Set
    # Brief(trace=True) (or REPRO_TRACE=1 globally) and the response
    # carries a span tree following the probe end-to-end — gateway
    # admission, QoS verdict, scheduler work group, every engine plan
    # node with rows in/out. Export it with trace.to_chrome_json() and
    # drop the file on https://ui.perfetto.dev (or about:tracing) for a
    # flame view. Tracing never changes an answer.
    observed = AgentFirstDataSystem(db)
    traced = observed.submit(
        Probe(
            queries=(
                "SELECT s.city, SUM(x.amount) FROM stores s JOIN sales x"
                " ON s.id = x.store_id GROUP BY s.city",
            ),
            brief=Brief(goal="compute the exact answer", trace=True),
            agent_id="observer",
        )
    )
    print("\n== watching the system think ==")

    def show(span, depth=0):
        print(f"  {'  ' * depth}{span.name}  {span.duration_ms:.3f}ms {span.attrs}")
        for child in span.children:
            show(child, depth + 1)

    show(traced.trace.root)
    chrome = traced.trace.to_chrome_json()
    print(f"chrome trace: {len(chrome)} bytes -> save as trace.json, load in Perfetto")

    # Every component publishes into one metrics registry per system:
    # counters, gauges, and latency histograms, renderable as JSON or
    # Prometheus exposition text (ShardedSystem.metrics() merges shards
    # with a shard label). A few of the series this run populated:
    snap = observed.metrics()
    for name in (
        "repro_gateway_windows_direct_total",
        "repro_scheduler_batches_served_total",
        "repro_engine_subplan_cache_hit_ratio",
    ):
        print(f"metric {name} = {snap.get(name)}")
    node_latency = snap.get("repro_engine_node_latency_ms", node="Scan", engine="row")
    if node_latency:
        print(f"metric repro_engine_node_latency_ms{{node=Scan}} count={node_latency['count']}")
    # print(snap.to_prometheus_text())  # the full scrape-ready payload

    # Slow-probe log: set SystemConfig.slow_probe_ms (or
    # REPRO_SLOW_PROBE_MS) and offenders land in system.slow_probes with
    # their full trace attached — the threshold implies tracing, because
    # a slow probe cannot be traced after the fact.
    print("slow probes over threshold:", len(observed.slow_probes))


if __name__ == "__main__":
    main()
