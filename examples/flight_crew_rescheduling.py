"""The paper's second motivating example: rescheduling a delayed flight's
crew by exploring hypothetical transactions on database branches.

An agent forks one branch per candidate crew plan, applies dozens of
updates speculatively, checks legality constraints, rolls back every
branch but the winner, and merges it — multi-world isolation with
ultra-fast rollbacks (paper Sec. 6.2).

Run:  python examples/flight_crew_rescheduling.py
"""

from repro.db import Database
from repro.errors import MergeConflict
from repro.txn import BranchManager
from repro.util.rng import RngStream


def build_db() -> Database:
    db = Database("airline")
    db.execute(
        "CREATE TABLE crew (id INT PRIMARY KEY, name TEXT, role TEXT,"
        " duty_hours INT, assigned_flight INT)"
    )
    db.execute(
        "CREATE TABLE flights (id INT PRIMARY KEY, origin TEXT,"
        " destination TEXT, status TEXT)"
    )
    crew_rows = [
        (1, "Ada", "Captain", 7, 101),
        (2, "Grace", "Captain", 2, None),
        (3, "Alan", "Captain", 9, 102),
        (4, "Edsger", "First Officer", 3, None),
        (5, "Barbara", "First Officer", 8, 101),
        (6, "Leslie", "First Officer", 1, None),
        (7, "Margaret", "Attendant", 4, None),
        (8, "Radia", "Attendant", 2, None),
    ]
    db.insert_rows("crew", crew_rows)
    db.insert_rows(
        "flights",
        [
            (101, "SFO", "SEA", "departed"),
            (102, "OAK", "AUS", "boarding"),
            (103, "SFO", "BOS", "delayed"),  # needs a fresh crew
        ],
    )
    return db


MAX_DUTY_HOURS = 8


def try_plan(manager: BranchManager, plan_name: str, captain: int, officer: int, attendant: int) -> bool:
    """Fork, assign the candidate crew, and validate legality in-branch."""
    branch = manager.fork("main", plan_name)
    for crew_id in (captain, officer, attendant):
        branch.execute(
            f"UPDATE crew SET assigned_flight = 103, duty_hours = duty_hours + 5"
            f" WHERE id = {crew_id}"
        )
    branch.execute("UPDATE flights SET status = 'crewed' WHERE id = 103")

    # Legality checks against the branch's own world.
    overworked = branch.execute(
        f"SELECT COUNT(*) FROM crew WHERE assigned_flight = 103"
        f" AND duty_hours > {MAX_DUTY_HOURS}"
    ).first_value()
    double_booked = branch.execute(
        "SELECT COUNT(*) FROM crew WHERE assigned_flight = 103 AND id IN"
        " (SELECT id FROM crew WHERE duty_hours > 12)"
    ).first_value()
    return overworked == 0 and double_booked == 0


def main() -> None:
    manager = BranchManager(build_db())
    rng = RngStream(0, "plans")

    candidates = [
        ("plan_a", 1, 4, 7),  # Ada is already at 7h -> +5 exceeds the cap
        ("plan_b", 3, 6, 8),  # Alan at 9h -> illegal
        ("plan_c", 2, 4, 8),  # Grace/Edsger/Radia -> legal
        ("plan_d", 2, 5, 7),  # Barbara at 8h -> illegal
    ]
    rng.shuffle(candidates)

    winner = None
    for name, captain, officer, attendant in candidates:
        legal = try_plan(manager, name, captain, officer, attendant)
        print(f"{name}: crew ({captain},{officer},{attendant}) ->"
              f" {'legal' if legal else 'violates duty-hour limits'}")
        if legal and winner is None:
            winner = name
        else:
            manager.rollback(name)

    assert winner is not None, "no legal plan found"
    try:
        result = manager.merge(winner)
        print(f"\nmerged {winner}: {result.updates} updates applied to main")
    except MergeConflict as conflict:
        print(f"merge conflict on {conflict.conflicts}; retrying on fresh fork")

    print("\nfinal crew for flight 103 (mainline):")
    print(
        manager.main.execute(
            "SELECT name, role, duty_hours FROM crew WHERE assigned_flight = 103"
            " ORDER BY role"
        ).to_text()
    )
    stats = manager.stats()
    print(
        f"\nsession stats: {stats['forks_created']} forks,"
        f" {stats['rollbacks']} rollbacks, {stats['merges']} merge(s) —"
        " the agentic 'fork many, keep one' pattern."
    )


if __name__ == "__main__":
    main()
